#include "graph/social_graph.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "obs/obs.hpp"

namespace st::graph {

double default_relationship_weight(Relationship r) noexcept {
  switch (r) {
    case Relationship::kFriendship:
      return 1.0;
    case Relationship::kColleague:
      return 1.2;
    case Relationship::kClassmate:
      return 1.2;
    case Relationship::kNeighbor:
      return 1.1;
    case Relationship::kKinship:
      return 2.0;
    case Relationship::kBusiness:
      return 0.8;
  }
  return 1.0;
}

SocialGraph::SocialGraph(std::size_t node_count)
    : node_count_(node_count),
      rel_offsets_(node_count + 1, 0),
      rel_overlay_slot_(node_count, kNoOverlay),
      int_offsets_(node_count + 1, 0),
      int_overlay_slot_(node_count, kNoOverlay),
      interaction_totals_(node_count, 0.0),
      revisions_(node_count, 0),
      structure_revisions_(node_count, 0) {
  auto& registry = obs::Obs::instance().registry();
  obs_rebuilds_ = &registry.counter("social_graph.csr_rebuilds");
  obs_delta_edges_ = &registry.counter("social_graph.csr_delta_edges");
}

void SocialGraph::bump_structure(NodeId a, NodeId b) {
  ++structure_revisions_[a];
  ++structure_revisions_[b];
  ++revisions_[a];
  ++revisions_[b];
  ++structure_epoch_;
  ++epoch_;
}

void SocialGraph::bump_value(NodeId a) {
  ++revisions_[a];
  ++epoch_;
}

void SocialGraph::check_node(NodeId a) const {
  if (a >= node_count_)
    throw std::out_of_range("SocialGraph: node id out of range");
}

// --- row views ---------------------------------------------------------------

SocialGraph::RelRow SocialGraph::rel_row(NodeId a) const noexcept {
  const std::uint32_t slot = rel_overlay_slot_[a];
  if (slot != kNoOverlay) {
    const RelOverlayRow& row = rel_overlay_[slot];
    return {row.targets.data(), row.masks.data(), row.targets.size()};
  }
  const std::uint64_t begin = rel_offsets_[a];
  return {rel_targets_.data() + begin, rel_masks_.data() + begin,
          static_cast<std::size_t>(rel_offsets_[a + 1] - begin)};
}

SocialGraph::RelRowMut SocialGraph::rel_row_mut(NodeId a) noexcept {
  const std::uint32_t slot = rel_overlay_slot_[a];
  if (slot != kNoOverlay) {
    RelOverlayRow& row = rel_overlay_[slot];
    return {row.targets.data(), row.masks.data(), row.targets.size()};
  }
  const std::uint64_t begin = rel_offsets_[a];
  return {rel_targets_.data() + begin, rel_masks_.data() + begin,
          static_cast<std::size_t>(rel_offsets_[a + 1] - begin)};
}

SocialGraph::IntRow SocialGraph::int_row(NodeId a) const noexcept {
  const std::uint32_t slot = int_overlay_slot_[a];
  if (slot != kNoOverlay) {
    const IntOverlayRow& row = int_overlay_[slot];
    return {row.targets.data(), row.counts.data(), row.targets.size()};
  }
  const std::uint64_t begin = int_offsets_[a];
  return {int_targets_.data() + begin, int_counts_.data() + begin,
          static_cast<std::size_t>(int_offsets_[a + 1] - begin)};
}

SocialGraph::IntRowMut SocialGraph::int_row_mut(NodeId a) noexcept {
  const std::uint32_t slot = int_overlay_slot_[a];
  if (slot != kNoOverlay) {
    IntOverlayRow& row = int_overlay_[slot];
    return {row.targets.data(), row.counts.data(), row.targets.size()};
  }
  const std::uint64_t begin = int_offsets_[a];
  return {int_targets_.data() + begin, int_counts_.data() + begin,
          static_cast<std::size_t>(int_offsets_[a + 1] - begin)};
}

std::size_t SocialGraph::find_in(const NodeId* targets, std::size_t size,
                                 NodeId b) noexcept {
  const NodeId* end = targets + size;
  const NodeId* it = std::lower_bound(targets, end, b);
  return (it != end && *it == b) ? static_cast<std::size_t>(it - targets)
                                 : static_cast<std::size_t>(-1);
}

SocialGraph::RelOverlayRow& SocialGraph::materialize_rel(NodeId a) {
  std::uint32_t slot = rel_overlay_slot_[a];
  if (slot == kNoOverlay) {
    slot = static_cast<std::uint32_t>(rel_overlay_.size());
    rel_overlay_.emplace_back();
    RelOverlayRow& row = rel_overlay_.back();
    const std::uint64_t begin = rel_offsets_[a];
    const std::uint64_t end = rel_offsets_[a + 1];
    row.targets.assign(rel_targets_.begin() + static_cast<std::ptrdiff_t>(begin),
                       rel_targets_.begin() + static_cast<std::ptrdiff_t>(end));
    row.masks.assign(rel_masks_.begin() + static_cast<std::ptrdiff_t>(begin),
                     rel_masks_.begin() + static_cast<std::ptrdiff_t>(end));
    rel_overlay_slot_[a] = slot;
    rel_overlay_entries_ += row.targets.size();
    ++rel_overlay_live_;
  }
  return rel_overlay_[slot];
}

SocialGraph::IntOverlayRow& SocialGraph::materialize_int(NodeId a) {
  std::uint32_t slot = int_overlay_slot_[a];
  if (slot == kNoOverlay) {
    slot = static_cast<std::uint32_t>(int_overlay_.size());
    int_overlay_.emplace_back();
    IntOverlayRow& row = int_overlay_.back();
    const std::uint64_t begin = int_offsets_[a];
    const std::uint64_t end = int_offsets_[a + 1];
    row.targets.assign(int_targets_.begin() + static_cast<std::ptrdiff_t>(begin),
                       int_targets_.begin() + static_cast<std::ptrdiff_t>(end));
    row.counts.assign(int_counts_.begin() + static_cast<std::ptrdiff_t>(begin),
                      int_counts_.begin() + static_cast<std::ptrdiff_t>(end));
    int_overlay_slot_[a] = slot;
    int_overlay_entries_ += row.targets.size();
    ++int_overlay_live_;
  }
  return int_overlay_[slot];
}

// --- compaction --------------------------------------------------------------

void SocialGraph::rebuild() {
  const std::uint64_t delta =
      rel_overlay_entries_ + int_overlay_entries_ + int_tombstones_;

  // Adjacency: one node-ordered sweep, each row taken from its overlay
  // when routed there, from the old CSR slice otherwise. Rows are already
  // sorted, so the result is the canonical sorted CSR independent of the
  // mutation order that produced the overlay.
  {
    std::vector<std::uint64_t> offsets(node_count_ + 1, 0);
    std::uint64_t total = 0;
    for (NodeId a = 0; a < node_count_; ++a) {
      offsets[a] = total;
      total += rel_row(a).size;
    }
    offsets[node_count_] = total;
    std::vector<NodeId> targets(total);
    std::vector<std::uint8_t> masks(total);
    for (NodeId a = 0; a < node_count_; ++a) {
      const RelRow row = rel_row(a);
      std::copy(row.targets, row.targets + row.size,
                targets.begin() + static_cast<std::ptrdiff_t>(offsets[a]));
      std::copy(row.masks, row.masks + row.size,
                masks.begin() + static_cast<std::ptrdiff_t>(offsets[a]));
    }
    rel_offsets_ = std::move(offsets);
    rel_targets_ = std::move(targets);
    rel_masks_ = std::move(masks);
    rel_overlay_.clear();
    std::fill(rel_overlay_slot_.begin(), rel_overlay_slot_.end(), kNoOverlay);
    rel_overlay_entries_ = 0;
    rel_overlay_live_ = 0;
  }

  // Interactions: same sweep; zero-count tombstones (cleared targets) are
  // dropped — interaction() treats missing and zero identically, so this
  // is invisible to every accessor.
  {
    std::vector<std::uint64_t> offsets(node_count_ + 1, 0);
    std::uint64_t total = 0;
    for (NodeId a = 0; a < node_count_; ++a) {
      offsets[a] = total;
      const IntRow row = int_row(a);
      for (std::size_t k = 0; k < row.size; ++k) {
        if (row.counts[k] > 0.0) ++total;
      }
    }
    offsets[node_count_] = total;
    std::vector<NodeId> targets(total);
    std::vector<double> counts(total);
    std::uint64_t out = 0;
    for (NodeId a = 0; a < node_count_; ++a) {
      const IntRow row = int_row(a);
      for (std::size_t k = 0; k < row.size; ++k) {
        if (row.counts[k] > 0.0) {
          targets[out] = row.targets[k];
          counts[out] = row.counts[k];
          ++out;
        }
      }
    }
    int_offsets_ = std::move(offsets);
    int_targets_ = std::move(targets);
    int_counts_ = std::move(counts);
    int_overlay_.clear();
    std::fill(int_overlay_slot_.begin(), int_overlay_slot_.end(), kNoOverlay);
    int_overlay_entries_ = 0;
    int_overlay_live_ = 0;
    int_tombstones_ = 0;
  }

  ++rebuilds_;
  obs_rebuilds_->add(1);
  obs_delta_edges_->add(delta);
}

void SocialGraph::begin_interval() {
  if (delta_mass() > 0) rebuild();
}

// --- relationships -----------------------------------------------------------

bool SocialGraph::add_relationship(NodeId a, NodeId b, Relationship r) {
  check_node(a);
  check_node(b);
  if (a == b) return false;
  const auto mask = static_cast<std::uint8_t>(1U << static_cast<unsigned>(r));
  bool new_edge = false;
  auto insert_half = [&](NodeId from, NodeId to) {
    const RelRowMut row = rel_row_mut(from);
    const std::size_t idx = find_in(row.targets, row.size, to);
    if (idx != static_cast<std::size_t>(-1)) {
      if (row.masks[idx] & mask) return false;
      row.masks[idx] |= mask;  // in-place: row length is unchanged
      return true;
    }
    RelOverlayRow& overlay = materialize_rel(from);
    const auto it = std::lower_bound(overlay.targets.begin(),
                                     overlay.targets.end(), to);
    const auto pos = it - overlay.targets.begin();
    overlay.targets.insert(it, to);
    overlay.masks.insert(overlay.masks.begin() + pos, mask);
    ++rel_overlay_entries_;
    ++half_edges_;
    new_edge = true;
    return true;
  };
  const bool added = insert_half(a, b);
  const bool added_rev = insert_half(b, a);
  // The halves are symmetric, but bump on either so a broken half-edge
  // invariant can never strand an un-revisioned write.
  if (added || added_rev) bump_structure(a, b);
  // A brand-new adjacency (as opposed to one more type on an existing
  // edge) is the only mutation that can create or shorten paths.
  if (new_edge) ++addition_epoch_;
  maybe_rebuild();
  return added;
}

bool SocialGraph::remove_relationship(NodeId a, NodeId b, Relationship r) {
  check_node(a);
  check_node(b);
  const auto mask = static_cast<std::uint8_t>(1U << static_cast<unsigned>(r));
  auto remove_half = [&](NodeId from, NodeId to) {
    const RelRowMut row = rel_row_mut(from);
    const std::size_t idx = find_in(row.targets, row.size, to);
    if (idx == static_cast<std::size_t>(-1) || !(row.masks[idx] & mask))
      return false;
    const auto next =
        static_cast<std::uint8_t>(row.masks[idx] & ~unsigned{mask});
    if (next != 0) {
      row.masks[idx] = next;  // in-place: the edge survives
      return true;
    }
    // Last type on the edge: the entry disappears, which resizes the row
    // — materialise and erase from the overlay copy.
    RelOverlayRow& overlay = materialize_rel(from);
    const auto it = std::lower_bound(overlay.targets.begin(),
                                     overlay.targets.end(), to);
    const auto pos = it - overlay.targets.begin();
    overlay.targets.erase(it);
    overlay.masks.erase(overlay.masks.begin() + pos);
    --rel_overlay_entries_;
    --half_edges_;
    return true;
  };
  const bool removed = remove_half(a, b);
  const bool removed_rev = remove_half(b, a);
  if (removed || removed_rev) bump_structure(a, b);
  maybe_rebuild();
  return removed;
}

bool SocialGraph::adjacent(NodeId a, NodeId b) const noexcept {
  return relationship_mask(a, b) != 0;
}

std::size_t SocialGraph::relationship_count(NodeId a,
                                            NodeId b) const noexcept {
  return static_cast<std::size_t>(std::popcount(relationship_mask(a, b)));
}

std::vector<Relationship> SocialGraph::relationships(NodeId a,
                                                     NodeId b) const {
  std::vector<Relationship> result;
  const std::uint8_t mask = relationship_mask(a, b);
  for (std::size_t i = 0; i < kRelationshipCount; ++i) {
    if (mask & (1U << i)) result.push_back(static_cast<Relationship>(i));
  }
  return result;
}

std::uint8_t SocialGraph::relationship_mask(NodeId a,
                                            NodeId b) const noexcept {
  if (a >= node_count_ || b >= node_count_) return 0;
  const RelRow row = rel_row(a);
  const std::size_t idx = find_in(row.targets, row.size, b);
  return idx != static_cast<std::size_t>(-1) ? row.masks[idx] : 0;
}

std::span<const NodeId> SocialGraph::neighbors(NodeId a) const noexcept {
  if (a >= node_count_) return {};
  const RelRow row = rel_row(a);
  return {row.targets, row.size};
}

std::size_t SocialGraph::degree(NodeId a) const noexcept {
  return a < node_count_ ? rel_row(a).size : 0;
}

std::vector<std::pair<NodeId, NodeId>> SocialGraph::boundary_edges(
    std::span<const std::uint32_t> owner) const {
  std::vector<std::pair<NodeId, NodeId>> out;
  auto owner_of = [&owner](NodeId v) -> std::uint32_t {
    return v < owner.size() ? owner[v] : 0;
  };
  for (NodeId a = 0; a < node_count_; ++a) {
    const std::uint32_t oa = owner_of(a);
    for (NodeId b : neighbors(a)) {
      if (a < b && oa != owner_of(b)) out.emplace_back(a, b);
    }
  }
  return out;
}

// --- interactions ------------------------------------------------------------

void SocialGraph::record_interaction(NodeId from, NodeId to, double count) {
  check_node(from);
  check_node(to);
  if (from == to || count <= 0.0) return;
  const IntRowMut row = int_row_mut(from);
  const std::size_t idx = find_in(row.targets, row.size, to);
  if (idx != static_cast<std::size_t>(-1)) {
    if (row.counts[idx] == 0.0 && int_tombstones_ > 0) --int_tombstones_;
    row.counts[idx] += count;  // in-place: counts are mutable CSR payload
  } else {
    IntOverlayRow& overlay = materialize_int(from);
    const auto it =
        std::lower_bound(overlay.targets.begin(), overlay.targets.end(), to);
    const auto pos = it - overlay.targets.begin();
    overlay.targets.insert(it, to);
    overlay.counts.insert(overlay.counts.begin() + pos, count);
    ++int_overlay_entries_;
  }
  interaction_totals_[from] += count;
  bump_value(from);
  maybe_rebuild();
}

double SocialGraph::interaction(NodeId from, NodeId to) const noexcept {
  if (from >= node_count_) return 0.0;
  const IntRow row = int_row(from);
  const std::size_t idx = find_in(row.targets, row.size, to);
  return idx != static_cast<std::size_t>(-1) ? row.counts[idx] : 0.0;
}

double SocialGraph::total_interactions(NodeId from) const noexcept {
  return from < node_count_ ? interaction_totals_[from] : 0.0;
}

SocialGraph::InteractionRow SocialGraph::interactions(
    NodeId from) const noexcept {
  if (from >= node_count_) return {};
  const IntRow row = int_row(from);
  return {{row.targets, row.size}, {row.counts, row.size}};
}

// --- derived structure -------------------------------------------------------

std::vector<NodeId> SocialGraph::common_friends(NodeId a, NodeId b) const {
  std::vector<NodeId> result;
  if (a >= node_count_ || b >= node_count_) return result;
  // Cache-linear merge over the two sorted CSR rows; a and b themselves
  // are not "common friends" even if the graph contains a triangle
  // through them.
  const RelRow ra = rel_row(a);
  const RelRow rb = rel_row(b);
  const NodeId* pa = ra.targets;
  const NodeId* ea = ra.targets + ra.size;
  const NodeId* pb = rb.targets;
  const NodeId* eb = rb.targets + rb.size;
  while (pa != ea && pb != eb) {
    if (*pa < *pb) {
      ++pa;
    } else if (*pb < *pa) {
      ++pb;
    } else {
      if (*pa != a && *pa != b) result.push_back(*pa);
      ++pa;
      ++pb;
    }
  }
  return result;
}

namespace {

#if defined(__GNUC__) || defined(__clang__)
#define ST_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define ST_PREFETCH(addr) ((void)0)
#endif

/// Reusable BFS workspace. A hop-capped BFS on a large graph spends a
/// surprising share of its time on setup — an O(n) visited/parent fill
/// plus std::queue's deque allocations — so the traversals below reuse a
/// per-thread scratch: visits are stamp-gated (no clearing between
/// calls) and the frontier is two flat level vectors. thread_local keeps
/// concurrent BFS calls (the parallel update interval) fully disjoint,
/// and the scratch never leaks into results: every BFS is still a pure
/// function of (graph, a, b, max_hops).
struct BfsScratch {
  /// Per-node word packing the visit stamp (low 32 bits) with the BFS
  /// parent (high 32): testing "seen?" and recording the discovery are
  /// one cache-line touch per node instead of two separate random
  /// accesses into a stamp array and a parent array — the innermost
  /// memory traffic of the whole traversal.
  std::vector<std::uint64_t> node_state;
  std::uint32_t epoch = 0;
  std::vector<NodeId> current;
  std::vector<NodeId> next;

  bool seen(NodeId v) const noexcept {
    return static_cast<std::uint32_t>(node_state[v]) == epoch;
  }
  void mark(NodeId v, NodeId parent) noexcept {
    node_state[v] = epoch | (std::uint64_t{parent} << 32);
  }
  NodeId parent_of(NodeId v) const noexcept {
    return static_cast<NodeId>(node_state[v] >> 32);
  }
};

BfsScratch& bfs_scratch(std::size_t n) {
  thread_local BfsScratch scratch;
  if (scratch.node_state.size() < n) {
    scratch.node_state.resize(n, 0);
  }
  if (++scratch.epoch == 0) {
    // u32 stamp wrapped: stale words could alias the fresh epoch, so
    // clear once per 2^32 traversals and restart above the zero-init.
    std::fill(scratch.node_state.begin(), scratch.node_state.end(), 0);
    scratch.epoch = 1;
  }
  scratch.current.clear();
  scratch.next.clear();
  return scratch;
}

}  // namespace

std::optional<std::size_t> SocialGraph::distance(
    NodeId a, NodeId b, std::size_t max_hops) const {
  check_node(a);
  check_node(b);
  if (a == b) return 0;
  // Level-synchronous BFS with a hop cap; the paper only ever needs
  // distances <= 4. Levels are expanded in the same FIFO order the
  // classic queue formulation uses, so the hop count found first is
  // identical. Each frontier node's neighbour row is one contiguous CSR
  // slice, so the expansion is cache-linear; with no overlay rows live
  // (the steady state after begin_interval()) rows come straight off the
  // flat arrays, skipping the per-node overlay-routing probe.
  BfsScratch& s = bfs_scratch(node_count_);
  const bool pure_csr = rel_overlay_live_ == 0;
  s.mark(a, a);
  s.current.push_back(a);
  for (std::size_t hops = 0; hops < max_hops && !s.current.empty(); ++hops) {
    s.next.clear();
    for (std::size_t idx = 0; idx < s.current.size(); ++idx) {
      const NodeId node = s.current[idx];
      // Hide the two random fetches each frontier node costs — its
      // offsets entry and its target row — by issuing them a little
      // ahead; visit order is untouched.
      if (idx + 2 < s.current.size()) {
        ST_PREFETCH(&rel_offsets_[s.current[idx + 2]]);
      }
      if (idx + 1 < s.current.size()) {
        ST_PREFETCH(rel_targets_.data() + rel_offsets_[s.current[idx + 1]]);
      }
      const NodeId* targets;
      std::size_t size;
      if (pure_csr) {
        const std::uint64_t begin = rel_offsets_[node];
        targets = rel_targets_.data() + begin;
        size = static_cast<std::size_t>(rel_offsets_[node + 1] - begin);
      } else {
        const RelRow row = rel_row(node);
        targets = row.targets;
        size = row.size;
      }
      for (std::size_t k = 0; k < size; ++k) {
        if (k + 4 < size) ST_PREFETCH(&s.node_state[targets[k + 4]]);
        const NodeId next = targets[k];
        if (s.seen(next)) continue;
        if (next == b) return hops + 1;
        s.mark(next, node);
        s.next.push_back(next);
      }
    }
    std::swap(s.current, s.next);
  }
  return std::nullopt;
}

std::optional<std::vector<NodeId>> SocialGraph::shortest_path(
    NodeId a, NodeId b, std::size_t max_hops) const {
  check_node(a);
  check_node(b);
  if (a == b) return std::vector<NodeId>{a};
  // Same level-synchronous traversal as distance(); the parent links
  // record the first discovery, so the reconstructed path is the exact
  // path the queue-based BFS returned (discovery order is unchanged —
  // bottleneck closeness depends on the specific path, not just its
  // length, making that equivalence part of the bit-identity contract).
  BfsScratch& s = bfs_scratch(node_count_);
  const bool pure_csr = rel_overlay_live_ == 0;
  s.mark(a, a);
  s.current.push_back(a);
  for (std::size_t hops = 0; hops < max_hops && !s.current.empty(); ++hops) {
    s.next.clear();
    for (std::size_t idx = 0; idx < s.current.size(); ++idx) {
      const NodeId node = s.current[idx];
      // Hide the two random fetches each frontier node costs — its
      // offsets entry and its target row — by issuing them a little
      // ahead; visit order is untouched.
      if (idx + 2 < s.current.size()) {
        ST_PREFETCH(&rel_offsets_[s.current[idx + 2]]);
      }
      if (idx + 1 < s.current.size()) {
        ST_PREFETCH(rel_targets_.data() + rel_offsets_[s.current[idx + 1]]);
      }
      const NodeId* targets;
      std::size_t size;
      if (pure_csr) {
        const std::uint64_t begin = rel_offsets_[node];
        targets = rel_targets_.data() + begin;
        size = static_cast<std::size_t>(rel_offsets_[node + 1] - begin);
      } else {
        const RelRow row = rel_row(node);
        targets = row.targets;
        size = row.size;
      }
      for (std::size_t k = 0; k < size; ++k) {
        if (k + 4 < size) ST_PREFETCH(&s.node_state[targets[k + 4]]);
        const NodeId next = targets[k];
        if (s.seen(next)) continue;
        s.mark(next, node);
        if (next == b) {
          std::vector<NodeId> path{b};
          for (NodeId cur = b; cur != a; cur = s.parent_of(cur))
            path.push_back(s.parent_of(cur));
          std::reverse(path.begin(), path.end());
          return path;
        }
        s.next.push_back(next);
      }
    }
    std::swap(s.current, s.next);
  }
  return std::nullopt;
}

void SocialGraph::clear_node(NodeId node) {
  check_node(node);
  // Drop all relationships (removing from both endpoints). The friend
  // list is copied first: remove_relationship may materialise overlays
  // or trigger a compaction, either of which moves the row.
  const RelRow row = rel_row(node);
  const std::vector<NodeId> friends(row.targets, row.targets + row.size);
  for (NodeId other : friends) {
    for (std::size_t r = 0; r < kRelationshipCount; ++r) {
      remove_relationship(node, other, static_cast<Relationship>(r));
    }
  }
  // Drop outgoing interactions: zero the counts in place (zero and
  // absent are indistinguishable through every accessor); the next
  // rebuild reclaims the tombstones.
  {
    const IntRowMut mine = int_row_mut(node);
    bool any = false;
    for (std::size_t k = 0; k < mine.size; ++k) {
      if (mine.counts[k] > 0.0) {
        mine.counts[k] = 0.0;
        ++int_tombstones_;
        any = true;
      }
    }
    if (any) {
      interaction_totals_[node] = 0.0;
      bump_value(node);
    }
  }
  // Drop incoming interactions. f(from, node) is part of `from`'s state
  // (Eq. 2 normalises by from's totals), so each affected rater bumps.
  for (NodeId from = 0; from < node_count_; ++from) {
    if (from == node) continue;
    const IntRowMut row_from = int_row_mut(from);
    const std::size_t idx = find_in(row_from.targets, row_from.size, node);
    if (idx != static_cast<std::size_t>(-1) && row_from.counts[idx] > 0.0) {
      interaction_totals_[from] -= row_from.counts[idx];
      row_from.counts[idx] = 0.0;
      ++int_tombstones_;
      bump_value(from);
    }
  }
  maybe_rebuild();
}

SocialGraph::MemoryFootprint SocialGraph::memory_footprint() const noexcept {
  auto vec_bytes = [](const auto& v) {
    return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  MemoryFootprint m;
  m.adjacency_bytes =
      vec_bytes(rel_offsets_) + vec_bytes(rel_targets_) + vec_bytes(rel_masks_);
  m.interaction_bytes = vec_bytes(int_offsets_) + vec_bytes(int_targets_) +
                        vec_bytes(int_counts_) + vec_bytes(interaction_totals_);
  m.overlay_bytes =
      vec_bytes(rel_overlay_slot_) + vec_bytes(int_overlay_slot_);
  for (const RelOverlayRow& row : rel_overlay_) {
    m.overlay_bytes += vec_bytes(row.targets) + vec_bytes(row.masks) +
                       sizeof(RelOverlayRow);
  }
  for (const IntOverlayRow& row : int_overlay_) {
    m.overlay_bytes += vec_bytes(row.targets) + vec_bytes(row.counts) +
                       sizeof(IntOverlayRow);
  }
  m.revision_bytes = vec_bytes(revisions_) + vec_bytes(structure_revisions_);
  return m;
}

}  // namespace st::graph
