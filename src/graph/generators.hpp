#pragma once
// Random social-network generators.
//
// The synthetic Overstock trace (Section 3 substitution, see DESIGN.md)
// needs a personal network with realistic degree structure; the P2P
// experiments (Section 5.1) need a simpler random relationship assignment.
// Three standard models cover both uses:
//   * Erdős–Rényi        — baseline random graph,
//   * Watts–Strogatz     — high clustering + short paths (friend circles),
//   * Barabási–Albert    — power-law degree (a few social hubs).

#include <cstddef>

#include "graph/social_graph.hpp"
#include "stats/rng.hpp"

namespace st::graph {

/// G(n, p): every pair linked independently with probability p
/// (friendship relationship).
SocialGraph erdos_renyi(std::size_t n, double p, stats::Rng& rng);

/// Watts–Strogatz small world: ring lattice with k nearest neighbours per
/// node (k even), each edge rewired with probability beta.
SocialGraph watts_strogatz(std::size_t n, std::size_t k, double beta,
                           stats::Rng& rng);

/// Barabási–Albert preferential attachment: each new node attaches m edges
/// to existing nodes with probability proportional to degree.
/// Precondition: n > m >= 1.
SocialGraph barabasi_albert(std::size_t n, std::size_t m, stats::Rng& rng);

}  // namespace st::graph
