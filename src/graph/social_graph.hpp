#pragma once
// Social-network substrate on a compact, epoch-rebuilt CSR core.
//
// SocialTrust reads four things off the social network (paper Sections 3-4):
//   1. adjacency + the *set of typed relationships* on each edge
//      (Eq. 2 counts them, Eq. 10 weights them by type),
//   2. directed interaction frequencies f(i,j) (resource-request counts),
//   3. common-friend sets (friend-of-friend closeness, Eq. 3),
//   4. shortest social distance in hops (suspicious-behaviour B1, Fig. 3).
// SocialGraph stores exactly that, nothing more: it is the "personal
// network" of the Overstock analysis, decoupled from the P2P overlay.
//
// Storage layout (DESIGN.md §15, docs/ARCHITECTURE.md). Both the typed
// adjacency and the directed interaction rows live in flat CSR arrays —
// one offsets array indexed by node, plus parallel structure-of-arrays
// payload slices (`targets` + `relationship mask` for adjacency,
// `targets` + `double count` for interactions), each row sorted by
// target id. Every closeness BFS, common-friend intersection and
// dirty-pair scan therefore walks contiguous memory instead of chasing
// one heap allocation per node. Mutations between rebuilds are absorbed
// by a small per-node *delta overlay*: the first row-resizing mutation
// of a node copies its CSR row into a private sorted overlay row and
// the node reads from there until the next rebuild (mask flips and
// count increments on existing entries edit the flat arrays in place —
// no overlay needed). Once the delta mass (overlay entries + cleared
// tombstones) crosses a deterministic threshold — or explicitly at
// begin_interval() — the overlay is compacted back into fresh CSR
// arrays by a single node-ordered sweep.
//
// Rebuilds are representation-only: every accessor reads rows through
// the same sorted-row view before and after, so results are
// bit-identical and no revision/epoch counter moves. Rebuild timing is
// a pure function of the mutation sequence (the counters that trigger
// it never depend on representation), so runs are reproducible.
//
// Span stability: neighbors() spans are invalidated by ANY mutating
// method — not just mutations of the same node — because a mutation may
// trigger a compaction that moves every row. Callers must not hold a
// span across a non-const call (the pre-CSR contract was per-node; the
// repo's call sites already satisfied the stronger rule).

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

namespace st::obs {
class Counter;
}  // namespace st::obs

namespace st::graph {

using NodeId = std::uint32_t;

/// Typed social relationships. The hardened closeness metric (Eq. 10)
/// weights relationship types unequally — e.g. kinship counts for more
/// than an online friendship.
enum class Relationship : std::uint8_t {
  kFriendship = 0,
  kColleague,
  kClassmate,
  kNeighbor,
  kKinship,
  kBusiness,
};

inline constexpr std::size_t kRelationshipCount = 6;

/// Default per-type weights used by Eq. (10). Kinship is strongest; a plain
/// online friendship is the baseline (1.0). Callers may supply their own.
double default_relationship_weight(Relationship r) noexcept;

/// Undirected multigraph over a fixed node set with typed parallel edges
/// and directed interaction counters, on the CSR core described above.
///
/// Node ids are dense indices [0, size()). The node count is fixed at
/// construction — reputation experiments run on closed populations — but
/// relationships and interactions mutate freely.
class SocialGraph {
 public:
  /// Monotone change counter. Per-node revisions and global epochs never
  /// decrease and bump exactly when the corresponding state actually
  /// changes (no-op mutator calls and representation rebuilds leave them
  /// untouched), so equality of a revision witnessed at compute time with
  /// the current revision proves a derived value would come out identical
  /// if re-derived.
  using Revision = std::uint64_t;

  explicit SocialGraph(std::size_t node_count);

  std::size_t size() const noexcept { return node_count_; }

  /// Adds a typed relationship between a and b (undirected). Parallel
  /// relationships of distinct types accumulate on the same edge; adding a
  /// duplicate type is a no-op. Self-relationships are rejected (returns
  /// false), matching the paper's model where closeness is pairwise.
  bool add_relationship(NodeId a, NodeId b, Relationship r);

  /// Removes one relationship type; returns true if it existed. The edge
  /// disappears once its last relationship is removed.
  bool remove_relationship(NodeId a, NodeId b, Relationship r);

  bool adjacent(NodeId a, NodeId b) const noexcept;

  /// Number of distinct relationship types on edge (a,b) — the m(i,j)
  /// of Eq. (2). Zero when not adjacent.
  std::size_t relationship_count(NodeId a, NodeId b) const noexcept;

  /// The relationship types on edge (a,b), unspecified order.
  std::vector<Relationship> relationships(NodeId a, NodeId b) const;

  /// The same type set as a packed bitmask — bit i set iff Relationship(i)
  /// is present; 0 when not adjacent. Allocation-free alternative to
  /// relationships() for hot closeness evaluation (the mask has only
  /// 2^kRelationshipCount states, so derived quantities are tabulable).
  std::uint8_t relationship_mask(NodeId a, NodeId b) const noexcept;

  /// Neighbour ids of `a` (ascending order). Invalidated by any mutating
  /// method (see the span-stability note above).
  std::span<const NodeId> neighbors(NodeId a) const noexcept;

  std::size_t degree(NodeId a) const noexcept;

  /// Records `count` interactions from `from` to `to` — in the P2P mapping,
  /// "an interaction is an action that a peer requests a resource from
  /// another peer" (Section 4.1). Interactions are directed and need not be
  /// between adjacent nodes.
  void record_interaction(NodeId from, NodeId to, double count = 1.0);

  /// Directed interaction count f(i,j).
  double interaction(NodeId from, NodeId to) const noexcept;

  /// Sum of f(i, *) over everyone `from` interacted with — the denominator
  /// of Eq. (2).
  double total_interactions(NodeId from) const noexcept;

  /// Directed interaction row of `from`: parallel spans of target ids
  /// (ascending) and counts. Entries with zero count may appear (cleared
  /// targets awaiting the next rebuild); callers treat them as absent.
  /// Same span-stability contract as neighbors().
  struct InteractionRow {
    std::span<const NodeId> targets;
    std::span<const double> counts;
  };
  InteractionRow interactions(NodeId from) const noexcept;

  /// Nodes appearing in both neighbour lists (the k of Eq. 3), ascending.
  std::vector<NodeId> common_friends(NodeId a, NodeId b) const;

  /// BFS hop distance between a and b, searching at most `max_hops` hops.
  /// Returns nullopt when unreachable within the cap. distance(a,a) == 0.
  std::optional<std::size_t> distance(NodeId a, NodeId b,
                                      std::size_t max_hops = 6) const;

  /// One shortest path a -> ... -> b within `max_hops` (inclusive of both
  /// endpoints), or nullopt. Used by the bottleneck-closeness fallback of
  /// Eq. (4).
  std::optional<std::vector<NodeId>> shortest_path(
      NodeId a, NodeId b, std::size_t max_hops = 6) const;

  /// Total number of undirected edges (distinct adjacent pairs).
  std::size_t edge_count() const noexcept { return half_edges_ / 2; }

  /// Erases every trace of `node` from the graph — all its relationships
  /// and all interactions to and from it — as when a peer discards its
  /// identity (whitewashing). The node id itself remains valid (the node
  /// set is fixed) but is socially blank afterwards.
  void clear_node(NodeId node);

  /// Read-only iteration over the CSR adjacency rows of one partition's
  /// member set — the shard-local view the partitioner's refinement pass
  /// and the sharded aggregator's per-shard walks use. Rows come back in
  /// member order (callers pass members ascending, so iteration order is
  /// the deterministic node order, never hash order). The view borrows
  /// both the graph and the member span; the usual span-stability
  /// contract applies (any graph mutation invalidates the rows).
  class PartitionView {
   public:
    struct Row {
      NodeId node = 0;
      std::span<const NodeId> neighbors;
    };
    std::size_t size() const noexcept { return members_.size(); }
    Row row(std::size_t k) const noexcept {
      const NodeId node = members_[k];
      return Row{node, g_->neighbors(node)};
    }

   private:
    friend class SocialGraph;
    PartitionView(const SocialGraph& g, std::span<const NodeId> members)
        : g_(&g), members_(members) {}
    const SocialGraph* g_;
    std::span<const NodeId> members_;
  };
  PartitionView partition_view(std::span<const NodeId> members) const {
    return PartitionView(*this, members);
  }

  /// Undirected edges whose endpoints belong to different owners under
  /// the given node -> owner map, as ascending (a, b) pairs with a < b —
  /// the boundary set a partition's exchange schedule must cover. Nodes
  /// at or beyond owner.size() are treated as owner 0. Deterministic:
  /// enumeration walks adjacency rows in node order.
  std::vector<std::pair<NodeId, NodeId>> boundary_edges(
      std::span<const std::uint32_t> owner) const;

  /// Interval hook: compacts any pending delta overlay (and interaction
  /// tombstones) into fresh flat CSR arrays. Representation-only — no
  /// accessor result and no revision counter changes — so callers may
  /// invoke it at any quiescent point; the Simulator does so at the top
  /// of every reputation-update interval so the parallel closeness
  /// passes always read pure CSR rows. Invalidates outstanding spans.
  void begin_interval();

  /// Revision of *all* social state owned by `node`: its neighbour list,
  /// edge types, and outgoing interaction row f(node, *). Bumped by every
  /// mutator that changes any of those.
  Revision revision(NodeId node) const noexcept {
    return node < revisions_.size() ? revisions_[node] : 0;
  }

  /// Revision of `node`'s *structural* state only — its neighbour list and
  /// the relationship types on its edges. Interaction counters do not bump
  /// this, so structure-derived values (common-friend sets, adjacency) can
  /// be witnessed without churning on the rating stream.
  Revision structure_revision(NodeId node) const noexcept {
    return node < structure_revisions_.size() ? structure_revisions_[node] : 0;
  }

  /// Global epoch: bumps whenever any node's state changes at all.
  Revision epoch() const noexcept { return epoch_; }

  /// Structural epoch: bumps only when some edge appears, disappears, or
  /// changes type anywhere. While it holds still, every BFS distance and
  /// shortest path in the graph is unchanged.
  Revision structure_epoch() const noexcept { return structure_epoch_; }

  /// Edge-addition epoch: bumps only when a brand-new adjacency appears
  /// anywhere (the first relationship between a previously non-adjacent
  /// pair). Removals and type changes never bump it. While it holds
  /// still, no distance anywhere has shrunk and no new path exists, so a
  /// previously computed shortest path can only have been affected by
  /// changes touching its own nodes — the precise gate the path cache
  /// pairs with per-node structure witnesses.
  Revision edge_addition_epoch() const noexcept { return addition_epoch_; }

  // --- CSR maintenance diagnostics (tests, bench, docs) ---------------------

  /// Compactions performed so far (adjacency + interaction rebuilds).
  std::uint64_t rebuild_count() const noexcept { return rebuilds_; }

  /// Current delta mass: overlay entries + materialised overlay rows +
  /// interaction tombstones — the quantity the rebuild threshold watches.
  std::size_t delta_mass() const noexcept {
    return rel_overlay_entries_ + rel_overlay_live_ + int_overlay_entries_ +
           int_overlay_live_ + int_tombstones_;
  }

  /// Heap bytes of the graph representation, split by component. Measures
  /// vector capacities (allocated, not just used bytes); used by the
  /// bench_csr_graph memory table and the README footprint numbers.
  struct MemoryFootprint {
    std::size_t adjacency_bytes = 0;     ///< CSR offsets + targets + masks
    std::size_t interaction_bytes = 0;   ///< CSR offsets + targets + counts
    std::size_t overlay_bytes = 0;       ///< delta rows awaiting compaction
    std::size_t revision_bytes = 0;      ///< per-node revision counters
    std::size_t total() const noexcept {
      return adjacency_bytes + interaction_bytes + overlay_bytes +
             revision_bytes;
    }
  };
  MemoryFootprint memory_footprint() const noexcept;

  /// Minimum delta mass before a mutator may compact. A rebuild also
  /// requires delta mass * kRebuildFraction >= CSR entries + node count
  /// (the node count being a proxy for the O(n) offset sweep a rebuild
  /// pays regardless of edge count), so rebuild cost stays amortised
  /// O(1) per mutation at every scale.
  static constexpr std::size_t kRebuildMinDelta = 256;
  static constexpr std::size_t kRebuildFraction = 4;

 private:
  static constexpr std::uint32_t kNoOverlay = 0xFFFFFFFFU;

  /// Materialised delta row for one node's adjacency: the CSR row copied
  /// out, then mutated in place. SoA (targets/masks) so neighbors() can
  /// return the target slice directly.
  struct RelOverlayRow {
    std::vector<NodeId> targets;
    std::vector<std::uint8_t> masks;
  };
  /// Same, for one node's directed interaction row.
  struct IntOverlayRow {
    std::vector<NodeId> targets;
    std::vector<double> counts;
  };

  /// Read-only view of a node's adjacency row (CSR or overlay).
  struct RelRow {
    const NodeId* targets = nullptr;
    const std::uint8_t* masks = nullptr;
    std::size_t size = 0;
  };
  /// Mutable view of the same (masks editable in place).
  struct RelRowMut {
    const NodeId* targets = nullptr;
    std::uint8_t* masks = nullptr;
    std::size_t size = 0;
  };
  struct IntRow {
    const NodeId* targets = nullptr;
    const double* counts = nullptr;
    std::size_t size = 0;
  };
  struct IntRowMut {
    const NodeId* targets = nullptr;
    double* counts = nullptr;
    std::size_t size = 0;
  };

  RelRow rel_row(NodeId a) const noexcept;
  RelRowMut rel_row_mut(NodeId a) noexcept;
  IntRow int_row(NodeId a) const noexcept;
  IntRowMut int_row_mut(NodeId a) noexcept;

  /// Index of `b` in a's sorted row, or npos.
  static std::size_t find_in(const NodeId* targets, std::size_t size,
                             NodeId b) noexcept;

  /// Copies a's CSR adjacency (resp. interaction) row into a fresh
  /// overlay row and routes the node there. No-op if already routed.
  RelOverlayRow& materialize_rel(NodeId a);
  IntOverlayRow& materialize_int(NodeId a);

  void maybe_rebuild() {
    const std::size_t mass = delta_mass();
    if (mass >= kRebuildMinDelta &&
        mass * kRebuildFraction >=
            rel_targets_.size() + int_targets_.size() + node_count_) {
      rebuild();
    }
  }

  /// Compacts both overlays into fresh CSR arrays (node-ordered sweep;
  /// zero-count interaction entries are dropped). Representation-only.
  void rebuild();

  void check_node(NodeId a) const;
  void bump_structure(NodeId a, NodeId b);
  void bump_value(NodeId a);

  std::size_t node_count_ = 0;

  // Adjacency CSR: row a is rel_targets_[rel_offsets_[a] ..
  // rel_offsets_[a+1]) sorted ascending, rel_masks_ parallel.
  std::vector<std::uint64_t> rel_offsets_;
  std::vector<NodeId> rel_targets_;
  std::vector<std::uint8_t> rel_masks_;
  // Delta overlay: rel_overlay_slot_[a] routes a's reads/writes to
  // rel_overlay_[slot] until the next rebuild.
  std::vector<std::uint32_t> rel_overlay_slot_;
  std::vector<RelOverlayRow> rel_overlay_;
  std::size_t rel_overlay_entries_ = 0;  ///< half-edges living in overlay rows
  std::size_t rel_overlay_live_ = 0;     ///< materialised overlay rows

  // Interaction CSR (directed), same scheme; counts are mutable payload
  // (+= edits the flat array in place). Cleared entries become 0-count
  // tombstones until the next rebuild drops them.
  std::vector<std::uint64_t> int_offsets_;
  std::vector<NodeId> int_targets_;
  std::vector<double> int_counts_;
  std::vector<std::uint32_t> int_overlay_slot_;
  std::vector<IntOverlayRow> int_overlay_;
  std::size_t int_overlay_entries_ = 0;
  std::size_t int_overlay_live_ = 0;
  std::size_t int_tombstones_ = 0;

  std::vector<double> interaction_totals_;
  std::size_t half_edges_ = 0;

  // Change tracking (see Revision). structure_revisions_[n] <= revisions_[n]
  // in bump count: every structural bump also bumps the full revision.
  std::vector<Revision> revisions_;
  std::vector<Revision> structure_revisions_;
  Revision epoch_ = 0;
  Revision structure_epoch_ = 0;
  Revision addition_epoch_ = 0;

  std::uint64_t rebuilds_ = 0;

  // Process-wide observability handles (docs/OBSERVABILITY.md), resolved
  // once at construction; no-ops while the obs layer is disabled.
  obs::Counter* obs_rebuilds_ = nullptr;
  obs::Counter* obs_delta_edges_ = nullptr;
};

}  // namespace st::graph
