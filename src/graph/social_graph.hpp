#pragma once
// Social-network substrate.
//
// SocialTrust reads four things off the social network (paper Sections 3-4):
//   1. adjacency + the *set of typed relationships* on each edge
//      (Eq. 2 counts them, Eq. 10 weights them by type),
//   2. directed interaction frequencies f(i,j) (resource-request counts),
//   3. common-friend sets (friend-of-friend closeness, Eq. 3),
//   4. shortest social distance in hops (suspicious-behaviour B1, Fig. 3).
// SocialGraph stores exactly that, nothing more: it is the "personal
// network" of the Overstock analysis, decoupled from the P2P overlay.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace st::graph {

using NodeId = std::uint32_t;

/// Typed social relationships. The hardened closeness metric (Eq. 10)
/// weights relationship types unequally — e.g. kinship counts for more
/// than an online friendship.
enum class Relationship : std::uint8_t {
  kFriendship = 0,
  kColleague,
  kClassmate,
  kNeighbor,
  kKinship,
  kBusiness,
};

inline constexpr std::size_t kRelationshipCount = 6;

/// Default per-type weights used by Eq. (10). Kinship is strongest; a plain
/// online friendship is the baseline (1.0). Callers may supply their own.
double default_relationship_weight(Relationship r) noexcept;

/// Undirected multigraph over a fixed node set with typed parallel edges
/// and directed interaction counters.
///
/// Node ids are dense indices [0, size()). The node count is fixed at
/// construction — reputation experiments run on closed populations — but
/// relationships and interactions mutate freely.
class SocialGraph {
 public:
  /// Monotone change counter. Per-node revisions and global epochs never
  /// decrease and bump exactly when the corresponding state actually
  /// changes (no-op mutator calls leave them untouched), so equality of a
  /// revision witnessed at compute time with the current revision proves a
  /// derived value would come out identical if re-derived.
  using Revision = std::uint64_t;

  explicit SocialGraph(std::size_t node_count);

  std::size_t size() const noexcept { return adjacency_.size(); }

  /// Adds a typed relationship between a and b (undirected). Parallel
  /// relationships of distinct types accumulate on the same edge; adding a
  /// duplicate type is a no-op. Self-relationships are rejected (returns
  /// false), matching the paper's model where closeness is pairwise.
  bool add_relationship(NodeId a, NodeId b, Relationship r);

  /// Removes one relationship type; returns true if it existed. The edge
  /// disappears once its last relationship is removed.
  bool remove_relationship(NodeId a, NodeId b, Relationship r);

  bool adjacent(NodeId a, NodeId b) const noexcept;

  /// Number of distinct relationship types on edge (a,b) — the m(i,j)
  /// of Eq. (2). Zero when not adjacent.
  std::size_t relationship_count(NodeId a, NodeId b) const noexcept;

  /// The relationship types on edge (a,b), unspecified order.
  std::vector<Relationship> relationships(NodeId a, NodeId b) const;

  /// The same type set as a packed bitmask — bit i set iff Relationship(i)
  /// is present; 0 when not adjacent. Allocation-free alternative to
  /// relationships() for hot closeness evaluation (the mask has only
  /// 2^kRelationshipCount states, so derived quantities are tabulable).
  std::uint8_t relationship_mask(NodeId a, NodeId b) const noexcept;

  /// Neighbour ids of `a` (ascending order).
  std::span<const NodeId> neighbors(NodeId a) const noexcept;

  std::size_t degree(NodeId a) const noexcept;

  /// Records `count` interactions from `from` to `to` — in the P2P mapping,
  /// "an interaction is an action that a peer requests a resource from
  /// another peer" (Section 4.1). Interactions are directed and need not be
  /// between adjacent nodes.
  void record_interaction(NodeId from, NodeId to, double count = 1.0);

  /// Directed interaction count f(i,j).
  double interaction(NodeId from, NodeId to) const noexcept;

  /// Sum of f(i, *) over everyone `from` interacted with — the denominator
  /// of Eq. (2).
  double total_interactions(NodeId from) const noexcept;

  /// Nodes appearing in both neighbour lists (the k of Eq. 3), ascending.
  std::vector<NodeId> common_friends(NodeId a, NodeId b) const;

  /// BFS hop distance between a and b, searching at most `max_hops` hops.
  /// Returns nullopt when unreachable within the cap. distance(a,a) == 0.
  std::optional<std::size_t> distance(NodeId a, NodeId b,
                                      std::size_t max_hops = 6) const;

  /// One shortest path a -> ... -> b within `max_hops` (inclusive of both
  /// endpoints), or nullopt. Used by the bottleneck-closeness fallback of
  /// Eq. (4).
  std::optional<std::vector<NodeId>> shortest_path(
      NodeId a, NodeId b, std::size_t max_hops = 6) const;

  /// Total number of undirected edges (distinct adjacent pairs).
  std::size_t edge_count() const noexcept;

  /// Erases every trace of `node` from the graph — all its relationships
  /// and all interactions to and from it — as when a peer discards its
  /// identity (whitewashing). The node id itself remains valid (the node
  /// set is fixed) but is socially blank afterwards.
  void clear_node(NodeId node);

  /// Revision of *all* social state owned by `node`: its neighbour list,
  /// edge types, and outgoing interaction row f(node, *). Bumped by every
  /// mutator that changes any of those.
  Revision revision(NodeId node) const noexcept {
    return node < revisions_.size() ? revisions_[node] : 0;
  }

  /// Revision of `node`'s *structural* state only — its neighbour list and
  /// the relationship types on its edges. Interaction counters do not bump
  /// this, so structure-derived values (common-friend sets, adjacency) can
  /// be witnessed without churning on the rating stream.
  Revision structure_revision(NodeId node) const noexcept {
    return node < structure_revisions_.size() ? structure_revisions_[node] : 0;
  }

  /// Global epoch: bumps whenever any node's state changes at all.
  Revision epoch() const noexcept { return epoch_; }

  /// Structural epoch: bumps only when some edge appears, disappears, or
  /// changes type anywhere. While it holds still, every BFS distance and
  /// shortest path in the graph is unchanged.
  Revision structure_epoch() const noexcept { return structure_epoch_; }

  /// Edge-addition epoch: bumps only when a brand-new adjacency appears
  /// anywhere (the first relationship between a previously non-adjacent
  /// pair). Removals and type changes never bump it. While it holds
  /// still, no distance anywhere has shrunk and no new path exists, so a
  /// previously computed shortest path can only have been affected by
  /// changes touching its own nodes — the precise gate the path cache
  /// pairs with per-node structure witnesses.
  Revision edge_addition_epoch() const noexcept { return addition_epoch_; }

 private:
  struct EdgeRecord {
    NodeId to;
    std::uint8_t relationship_mask;  // bit i set <=> Relationship(i) present
  };

  const EdgeRecord* find_edge(NodeId a, NodeId b) const noexcept;
  EdgeRecord* find_edge(NodeId a, NodeId b) noexcept;
  void check_node(NodeId a) const;
  void bump_structure(NodeId a, NodeId b);
  void bump_value(NodeId a);

  // adjacency_[a] sorted by `to`; neighbor_ids_[a] mirrors the `to` fields
  // so neighbors() can return a span without allocation.
  std::vector<std::vector<EdgeRecord>> adjacency_;
  std::vector<std::vector<NodeId>> neighbor_ids_;
  // interactions_[from] sorted by target id.
  std::vector<std::vector<std::pair<NodeId, double>>> interactions_;
  std::vector<double> interaction_totals_;
  // Change tracking (see Revision). structure_revisions_[n] <= revisions_[n]
  // in bump count: every structural bump also bumps the full revision.
  std::vector<Revision> revisions_;
  std::vector<Revision> structure_revisions_;
  Revision epoch_ = 0;
  Revision structure_epoch_ = 0;
  Revision addition_epoch_ = 0;
};

}  // namespace st::graph
