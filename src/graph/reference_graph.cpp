#include "graph/reference_graph.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace st::graph {

ReferenceSocialGraph::ReferenceSocialGraph(std::size_t node_count)
    : adjacency_(node_count),
      neighbor_ids_(node_count),
      interactions_(node_count),
      interaction_totals_(node_count, 0.0),
      revisions_(node_count, 0),
      structure_revisions_(node_count, 0) {}

void ReferenceSocialGraph::bump_structure(NodeId a, NodeId b) {
  ++structure_revisions_[a];
  ++structure_revisions_[b];
  ++revisions_[a];
  ++revisions_[b];
  ++structure_epoch_;
  ++epoch_;
}

void ReferenceSocialGraph::bump_value(NodeId a) {
  ++revisions_[a];
  ++epoch_;
}

void ReferenceSocialGraph::check_node(NodeId a) const {
  if (a >= adjacency_.size())
    throw std::out_of_range("SocialGraph: node id out of range");
}

const ReferenceSocialGraph::EdgeRecord* ReferenceSocialGraph::find_edge(
    NodeId a, NodeId b) const noexcept {
  const auto& edges = adjacency_[a];
  auto it = std::lower_bound(
      edges.begin(), edges.end(), b,
      [](const EdgeRecord& e, NodeId id) { return e.to < id; });
  return (it != edges.end() && it->to == b) ? &*it : nullptr;
}

ReferenceSocialGraph::EdgeRecord* ReferenceSocialGraph::find_edge(NodeId a, NodeId b) noexcept {
  return const_cast<EdgeRecord*>(
      static_cast<const ReferenceSocialGraph*>(this)->find_edge(a, b));
}

bool ReferenceSocialGraph::add_relationship(NodeId a, NodeId b, Relationship r) {
  check_node(a);
  check_node(b);
  if (a == b) return false;
  auto mask = static_cast<std::uint8_t>(1U << static_cast<unsigned>(r));
  bool new_edge = false;
  auto insert_half = [&](NodeId from, NodeId to) {
    auto& edges = adjacency_[from];
    auto it = std::lower_bound(
        edges.begin(), edges.end(), to,
        [](const EdgeRecord& e, NodeId id) { return e.to < id; });
    if (it != edges.end() && it->to == to) {
      if (it->relationship_mask & mask) return false;
      it->relationship_mask |= mask;
      return true;
    }
    edges.insert(it, EdgeRecord{to, mask});
    auto& ids = neighbor_ids_[from];
    ids.insert(std::lower_bound(ids.begin(), ids.end(), to), to);
    new_edge = true;
    return true;
  };
  bool added = insert_half(a, b);
  bool added_rev = insert_half(b, a);
  if (added || added_rev) bump_structure(a, b);
  // A brand-new adjacency (as opposed to one more type on an existing
  // edge) is the only mutation that can create or shorten paths.
  if (new_edge) ++addition_epoch_;
  return added;
}

bool ReferenceSocialGraph::remove_relationship(NodeId a, NodeId b, Relationship r) {
  check_node(a);
  check_node(b);
  auto mask = static_cast<std::uint8_t>(1U << static_cast<unsigned>(r));
  auto remove_half = [&](NodeId from, NodeId to) {
    EdgeRecord* e = find_edge(from, to);
    if (!e || !(e->relationship_mask & mask)) return false;
    e->relationship_mask &= static_cast<std::uint8_t>(~mask);
    if (e->relationship_mask == 0) {
      auto& edges = adjacency_[from];
      edges.erase(edges.begin() + (e - edges.data()));
      auto& ids = neighbor_ids_[from];
      ids.erase(std::lower_bound(ids.begin(), ids.end(), to));
    }
    return true;
  };
  bool removed = remove_half(a, b);
  bool removed_rev = remove_half(b, a);
  if (removed || removed_rev) bump_structure(a, b);
  return removed;
}

bool ReferenceSocialGraph::adjacent(NodeId a, NodeId b) const noexcept {
  if (a >= adjacency_.size() || b >= adjacency_.size()) return false;
  return find_edge(a, b) != nullptr;
}

std::size_t ReferenceSocialGraph::relationship_count(NodeId a,
                                            NodeId b) const noexcept {
  if (a >= adjacency_.size() || b >= adjacency_.size()) return 0;
  const EdgeRecord* e = find_edge(a, b);
  return e ? static_cast<std::size_t>(std::popcount(e->relationship_mask))
           : 0;
}

std::vector<Relationship> ReferenceSocialGraph::relationships(NodeId a,
                                                     NodeId b) const {
  std::vector<Relationship> result;
  if (a >= adjacency_.size() || b >= adjacency_.size()) return result;
  const EdgeRecord* e = find_edge(a, b);
  if (!e) return result;
  for (std::size_t i = 0; i < kRelationshipCount; ++i) {
    if (e->relationship_mask & (1U << i))
      result.push_back(static_cast<Relationship>(i));
  }
  return result;
}

std::uint8_t ReferenceSocialGraph::relationship_mask(NodeId a,
                                            NodeId b) const noexcept {
  if (a >= adjacency_.size() || b >= adjacency_.size()) return 0;
  const EdgeRecord* e = find_edge(a, b);
  return e ? e->relationship_mask : 0;
}

std::span<const NodeId> ReferenceSocialGraph::neighbors(NodeId a) const noexcept {
  if (a >= neighbor_ids_.size()) return {};
  return neighbor_ids_[a];
}

std::size_t ReferenceSocialGraph::degree(NodeId a) const noexcept {
  return a < adjacency_.size() ? adjacency_[a].size() : 0;
}

void ReferenceSocialGraph::record_interaction(NodeId from, NodeId to, double count) {
  check_node(from);
  check_node(to);
  if (from == to || count <= 0.0) return;
  auto& row = interactions_[from];
  auto it = std::lower_bound(
      row.begin(), row.end(), to,
      [](const std::pair<NodeId, double>& p, NodeId id) {
        return p.first < id;
      });
  if (it != row.end() && it->first == to) {
    it->second += count;
  } else {
    row.insert(it, {to, count});
  }
  interaction_totals_[from] += count;
  bump_value(from);
}

double ReferenceSocialGraph::interaction(NodeId from, NodeId to) const noexcept {
  if (from >= interactions_.size()) return 0.0;
  const auto& row = interactions_[from];
  auto it = std::lower_bound(
      row.begin(), row.end(), to,
      [](const std::pair<NodeId, double>& p, NodeId id) {
        return p.first < id;
      });
  return (it != row.end() && it->first == to) ? it->second : 0.0;
}

double ReferenceSocialGraph::total_interactions(NodeId from) const noexcept {
  return from < interaction_totals_.size() ? interaction_totals_[from] : 0.0;
}

std::vector<NodeId> ReferenceSocialGraph::common_friends(NodeId a, NodeId b) const {
  std::vector<NodeId> result;
  if (a >= adjacency_.size() || b >= adjacency_.size()) return result;
  const auto& na = neighbor_ids_[a];
  const auto& nb = neighbor_ids_[b];
  std::set_intersection(na.begin(), na.end(), nb.begin(), nb.end(),
                        std::back_inserter(result));
  // a and b themselves are not "common friends" even if the graph contains
  // a triangle through them.
  std::erase(result, a);
  std::erase(result, b);
  return result;
}

namespace {

/// Reusable BFS workspace. A hop-capped BFS on a large graph spends a
/// surprising share of its time on setup — an O(n) visited/parent fill
/// plus std::queue's deque allocations — so the traversals below reuse a
/// per-thread scratch: visits are stamp-gated (no clearing between
/// calls) and the frontier is two flat level vectors. thread_local keeps
/// concurrent BFS calls (the parallel update interval) fully disjoint,
/// and the scratch never leaks into results: every BFS is still a pure
/// function of (graph, a, b, max_hops).
struct RefBfsScratch {
  std::vector<NodeId> parent;
  std::vector<std::uint64_t> stamp;
  std::uint64_t epoch = 0;
  std::vector<NodeId> current;
  std::vector<NodeId> next;
};

RefBfsScratch& ref_bfs_scratch(std::size_t n) {
  thread_local RefBfsScratch scratch;
  if (scratch.stamp.size() < n) {
    scratch.parent.resize(n);
    scratch.stamp.resize(n, 0);
  }
  ++scratch.epoch;
  scratch.current.clear();
  scratch.next.clear();
  return scratch;
}

}  // namespace

std::optional<std::size_t> ReferenceSocialGraph::distance(
    NodeId a, NodeId b, std::size_t max_hops) const {
  check_node(a);
  check_node(b);
  if (a == b) return 0;
  // Level-synchronous BFS with a hop cap; the paper only ever needs
  // distances <= 4. Levels are expanded in the same FIFO order the
  // classic queue formulation uses, so the hop count found first is
  // identical.
  RefBfsScratch& s = ref_bfs_scratch(adjacency_.size());
  s.stamp[a] = s.epoch;
  s.current.push_back(a);
  for (std::size_t hops = 0; hops < max_hops && !s.current.empty(); ++hops) {
    s.next.clear();
    for (NodeId node : s.current) {
      for (NodeId next : neighbor_ids_[node]) {
        if (s.stamp[next] == s.epoch) continue;
        if (next == b) return hops + 1;
        s.stamp[next] = s.epoch;
        s.next.push_back(next);
      }
    }
    std::swap(s.current, s.next);
  }
  return std::nullopt;
}

std::optional<std::vector<NodeId>> ReferenceSocialGraph::shortest_path(
    NodeId a, NodeId b, std::size_t max_hops) const {
  check_node(a);
  check_node(b);
  if (a == b) return std::vector<NodeId>{a};
  // Same level-synchronous traversal as distance(); the parent links
  // record the first discovery, so the reconstructed path is the exact
  // path the queue-based BFS returned (discovery order is unchanged —
  // bottleneck closeness depends on the specific path, not just its
  // length, making that equivalence part of the bit-identity contract).
  RefBfsScratch& s = ref_bfs_scratch(adjacency_.size());
  s.stamp[a] = s.epoch;
  s.parent[a] = a;
  s.current.push_back(a);
  for (std::size_t hops = 0; hops < max_hops && !s.current.empty(); ++hops) {
    s.next.clear();
    for (NodeId node : s.current) {
      for (NodeId next : neighbor_ids_[node]) {
        if (s.stamp[next] == s.epoch) continue;
        s.stamp[next] = s.epoch;
        s.parent[next] = node;
        if (next == b) {
          std::vector<NodeId> path{b};
          for (NodeId cur = b; cur != a; cur = s.parent[cur])
            path.push_back(s.parent[cur]);
          std::reverse(path.begin(), path.end());
          return path;
        }
        s.next.push_back(next);
      }
    }
    std::swap(s.current, s.next);
  }
  return std::nullopt;
}

void ReferenceSocialGraph::clear_node(NodeId node) {
  check_node(node);
  // Drop all relationships (removing from both endpoints).
  std::vector<NodeId> friends(neighbor_ids_[node].begin(),
                              neighbor_ids_[node].end());
  for (NodeId other : friends) {
    for (std::size_t r = 0; r < kRelationshipCount; ++r) {
      remove_relationship(node, other, static_cast<Relationship>(r));
    }
  }
  // Drop outgoing interactions.
  if (!interactions_[node].empty()) {
    interactions_[node].clear();
    interaction_totals_[node] = 0.0;
    bump_value(node);
  }
  // Drop incoming interactions. f(from, node) is part of `from`'s state
  // (Eq. 2 normalises by from's totals), so each affected rater bumps.
  for (NodeId from = 0; from < interactions_.size(); ++from) {
    auto& row = interactions_[from];
    auto it = std::lower_bound(
        row.begin(), row.end(), node,
        [](const std::pair<NodeId, double>& p, NodeId id) {
          return p.first < id;
        });
    if (it != row.end() && it->first == node) {
      interaction_totals_[from] -= it->second;
      row.erase(it);
      bump_value(from);
    }
  }
}

std::size_t ReferenceSocialGraph::edge_count() const noexcept {
  std::size_t half_edges = 0;
  for (const auto& edges : adjacency_) half_edges += edges.size();
  return half_edges / 2;
}

SocialGraph::MemoryFootprint ReferenceSocialGraph::memory_footprint()
    const noexcept {
  auto vec_bytes = [](const auto& v) {
    return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  SocialGraph::MemoryFootprint m;
  m.adjacency_bytes = vec_bytes(adjacency_) + vec_bytes(neighbor_ids_);
  for (const auto& edges : adjacency_) m.adjacency_bytes += vec_bytes(edges);
  for (const auto& ids : neighbor_ids_) m.adjacency_bytes += vec_bytes(ids);
  m.interaction_bytes = vec_bytes(interactions_) + vec_bytes(interaction_totals_);
  for (const auto& row : interactions_) m.interaction_bytes += vec_bytes(row);
  m.revision_bytes = vec_bytes(revisions_) + vec_bytes(structure_revisions_);
  return m;
}

}  // namespace st::graph
