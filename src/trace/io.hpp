#pragma once
// Marketplace-trace serialisation: CSV export/import so the Section 3
// analysis pipelines can run over externally supplied transaction data
// (and so generated traces can be inspected with standard tooling).
//
// Format (one header line, then one line per transaction):
//   buyer,seller,category,buyer_rating,seller_rating,social_distance

#include <iosfwd>

#include "trace/marketplace.hpp"

namespace st::trace {

/// Writes the transaction list as CSV.
void write_transactions_csv(std::ostream& out,
                            const MarketplaceTrace& trace);

/// Reads a transaction CSV (the write_transactions_csv format) and
/// reconstructs a MarketplaceTrace over `config.user_count` users:
/// transactions, reputations, business-network sizes and per-buyer request
/// histories are rebuilt from the rows; the personal network is left empty
/// unless supplied separately (graph::read_edge_list). Profiles' declared
/// sets are inferred as "categories the user bought or sold in".
/// Throws std::runtime_error on malformed input or out-of-range ids.
MarketplaceTrace read_transactions_csv(std::istream& in,
                                       const TraceConfig& config);

}  // namespace st::trace
