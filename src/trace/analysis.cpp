#include "trace/analysis.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <unordered_map>

#include "stats/correlation.hpp"

namespace st::trace {

namespace {

struct PairStats {
  std::uint32_t count = 0;
  double rating_sum = 0.0;
};

}  // namespace

TraceAnalysis analyze_trace(const MarketplaceTrace& trace,
                            std::size_t rank_limit) {
  TraceAnalysis out;
  const std::size_t n = trace.config.user_count;

  // --- Figs. 1(a), 1(b), 2: correlations against reputation ---
  std::vector<double> reputation(n), business(n), personal(n), sold(n);
  for (std::size_t u = 0; u < n; ++u) {
    reputation[u] = trace.reputation[u];
    business[u] = trace.business_network_size[u];
    personal[u] = static_cast<double>(trace.personal_network.degree(
        static_cast<NodeId>(u)));
    sold[u] = trace.transactions_as_seller[u];
  }
  out.reputation_business_correlation =
      stats::paper_correlation(reputation, business);
  out.reputation_transactions_correlation =
      stats::paper_correlation(reputation, sold);
  out.reputation_personal_correlation =
      stats::paper_correlation(reputation, personal);

  // --- Fig. 3: per-distance rating value and pair frequency ---
  // Distances beyond 3 hops (or disconnected, recorded as 0) aggregate
  // into the "4" row, mirroring the paper's 4-hop x axis.
  std::unordered_map<std::uint64_t, PairStats> pair_stats;
  std::array<double, 5> rating_sum{};
  std::array<std::uint64_t, 5> tx_count{};
  for (const Transaction& tx : trace.transactions) {
    std::uint8_t d = tx.social_distance;
    std::size_t bucket = (d >= 1 && d <= 3) ? d : 4;
    rating_sum[bucket] += tx.buyer_rating;
    ++tx_count[bucket];
    std::uint64_t key =
        (static_cast<std::uint64_t>(tx.buyer) << 32U) | tx.seller;
    PairStats& ps = pair_stats[key];
    ++ps.count;
    ps.rating_sum += tx.buyer_rating;
  }
  // Pair frequency per distance: mean ratings per distinct pair. We need
  // each pair's distance; recover it from any of its transactions.
  std::unordered_map<std::uint64_t, std::uint8_t> pair_distance;
  for (const Transaction& tx : trace.transactions) {
    std::uint64_t key =
        (static_cast<std::uint64_t>(tx.buyer) << 32U) | tx.seller;
    pair_distance.emplace(key, tx.social_distance);
  }
  std::array<double, 5> pair_count{};
  std::array<double, 5> pair_rating_total{};
  for (const auto& [key, ps] : pair_stats) {
    std::uint8_t d = pair_distance[key];
    std::size_t bucket = (d >= 1 && d <= 3) ? d : 4;
    pair_count[bucket] += 1.0;
    pair_rating_total[bucket] += ps.count;
  }
  for (std::uint8_t d = 1; d <= 4; ++d) {
    DistanceRow row;
    row.distance = d;
    row.transactions = tx_count[d];
    row.average_rating =
        tx_count[d] ? rating_sum[d] / static_cast<double>(tx_count[d]) : 0.0;
    row.average_frequency =
        pair_count[d] > 0.0 ? pair_rating_total[d] / pair_count[d] : 0.0;
    out.by_distance.push_back(row);
  }

  // --- Fig. 4(a): purchases by category rank ---
  // For each buyer, sort its purchase counts per category descending; the
  // rank-r share is its r-th largest count over its total purchases.
  std::vector<std::unordered_map<InterestId, std::uint32_t>> purchases(n);
  for (const Transaction& tx : trace.transactions) {
    ++purchases[tx.buyer][tx.category];
  }
  std::vector<double> share_sum(rank_limit, 0.0);
  std::size_t buyers_counted = 0;
  for (std::size_t u = 0; u < n; ++u) {
    if (purchases[u].empty()) continue;
    std::vector<double> counts;
    counts.reserve(purchases[u].size());
    double total = 0.0;
    for (const auto& [cat, cnt] : purchases[u]) {
      counts.push_back(cnt);
      total += cnt;
    }
    std::sort(counts.begin(), counts.end(), std::greater<>());
    for (std::size_t r = 0; r < rank_limit && r < counts.size(); ++r) {
      share_sum[r] += counts[r] / total;
    }
    ++buyers_counted;
  }
  out.category_rank_share.resize(rank_limit, 0.0);
  out.category_rank_cdf.resize(rank_limit, 0.0);
  double acc = 0.0;
  for (std::size_t r = 0; r < rank_limit; ++r) {
    out.category_rank_share[r] =
        buyers_counted ? share_sum[r] / static_cast<double>(buyers_counted)
                       : 0.0;
    acc += out.category_rank_share[r];
    out.category_rank_cdf[r] = acc;
  }
  out.top3_share = rank_limit >= 3 ? out.category_rank_cdf[2] : acc;

  // --- Fig. 4(b): transaction-pair interest similarity CDF ---
  // Similarity is Eq. (7) over declared profiles, computed once per
  // distinct pair, weighted by that pair's transaction count.
  std::map<double, std::uint64_t> similarity_tx;  // ordered for the CDF
  double similarity_weighted_sum = 0.0;
  std::uint64_t tx_total = 0;
  for (const auto& [key, ps] : pair_stats) {
    auto buyer = static_cast<NodeId>(key >> 32U);
    auto seller = static_cast<NodeId>(key & 0xFFFFFFFFU);
    double sim = trace.profiles.similarity(buyer, seller);
    similarity_tx[sim] += ps.count;
    similarity_weighted_sum += sim * static_cast<double>(ps.count);
    tx_total += ps.count;
  }
  if (tx_total > 0) {
    std::uint64_t running = 0;
    for (const auto& [sim, cnt] : similarity_tx) {
      running += cnt;
      out.similarity_cdf.push_back(
          {sim, static_cast<double>(running) / static_cast<double>(tx_total)});
    }
    out.mean_pair_similarity =
        similarity_weighted_sum / static_cast<double>(tx_total);
    std::uint64_t low = 0, above03 = 0;
    for (const auto& [sim, cnt] : similarity_tx) {
      if (sim <= 0.2) low += cnt;
      if (sim > 0.3) above03 += cnt;
    }
    out.fraction_low_similarity =
        static_cast<double>(low) / static_cast<double>(tx_total);
    out.fraction_above_03 =
        static_cast<double>(above03) / static_cast<double>(tx_total);
  }

  return out;
}

}  // namespace st::trace
