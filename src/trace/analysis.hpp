#pragma once
// Section 3 analysis pipelines: recompute the paper's trace statistics
// (Figs. 1-4, observations O1-O6) from a MarketplaceTrace.

#include <cstdint>
#include <vector>

#include "trace/marketplace.hpp"

namespace st::trace {

/// Fig. 3 row: transactions at one buyer-seller social distance.
struct DistanceRow {
  std::uint8_t distance = 0;       ///< hops (1-4); 4 aggregates ">3 or none"
  double average_rating = 0.0;     ///< mean buyer rating of the seller
  double average_frequency = 0.0;  ///< mean #ratings per (buyer,seller) pair
  std::uint64_t transactions = 0;
};

/// One empirical-CDF sample of Fig. 4(b): fraction of transactions whose
/// buyer/seller interest similarity is <= `similarity`.
struct SimilarityCdfPoint {
  double similarity = 0.0;
  double cumulative_fraction = 0.0;
};

struct TraceAnalysis {
  // --- Fig. 1(a): reputation vs business-network size ---
  /// Paper correlation C = r^2 (the crawl showed 0.996).
  double reputation_business_correlation = 0.0;

  // --- Fig. 1(b): reputation vs transactions received ---
  double reputation_transactions_correlation = 0.0;

  // --- Fig. 2: reputation vs personal-network size ---
  /// The crawl showed a weak 0.092.
  double reputation_personal_correlation = 0.0;

  // --- Fig. 3: behaviour by social distance ---
  std::vector<DistanceRow> by_distance;  ///< rows for distances 1..4

  // --- Fig. 4(a): category-rank concentration ---
  /// share[r] = average share of a user's purchases in its rank-(r+1)
  /// category; cdf[r] = cumulative share of ranks 1..r+1.
  std::vector<double> category_rank_share;
  std::vector<double> category_rank_cdf;
  /// Paper headline: "the top 3 categories ... constitute about 88%".
  double top3_share = 0.0;

  // --- Fig. 4(b): interest similarity of transaction pairs ---
  std::vector<SimilarityCdfPoint> similarity_cdf;
  /// Paper headline numbers: 10% of transactions at <= 0.2 similarity,
  /// 60% at > 0.3.
  double fraction_low_similarity = 0.0;   ///< tx with similarity <= 0.2
  double fraction_above_03 = 0.0;         ///< tx with similarity > 0.3

  /// Average interest similarity over transaction pairs (the paper quotes
  /// 0.423 for Overstock, used as the system-wide Gaussian centre).
  double mean_pair_similarity = 0.0;
};

/// Runs all Section 3 pipelines. `rank_limit` bounds the Fig. 4(a) rank
/// table (the paper plots the top 7).
TraceAnalysis analyze_trace(const MarketplaceTrace& trace,
                            std::size_t rank_limit = 7);

}  // namespace st::trace
