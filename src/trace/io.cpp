#include "trace/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <vector>

namespace st::trace {

void write_transactions_csv(std::ostream& out,
                            const MarketplaceTrace& trace) {
  out << "buyer,seller,category,buyer_rating,seller_rating,"
         "social_distance\n";
  for (const Transaction& tx : trace.transactions) {
    out << tx.buyer << ',' << tx.seller << ',' << tx.category << ','
        << tx.buyer_rating << ',' << tx.seller_rating << ','
        << static_cast<unsigned>(tx.social_distance) << '\n';
  }
}

MarketplaceTrace read_transactions_csv(std::istream& in,
                                       const TraceConfig& config) {
  MarketplaceTrace trace(config);
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("read_transactions_csv: empty input");
  }
  // Per-user distinct-partner sets and bought/sold category sets.
  std::vector<std::unordered_set<NodeId>> partners(config.user_count);
  std::vector<std::unordered_set<InterestId>> categories(config.user_count);

  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::istringstream row(line);
    Transaction tx;
    unsigned long buyer = 0, seller = 0, category = 0, distance = 0;
    char comma = 0;
    if (!(row >> buyer >> comma >> seller >> comma >> category >> comma >>
          tx.buyer_rating >> comma >> tx.seller_rating >> comma >>
          distance)) {
      throw std::runtime_error("read_transactions_csv: malformed line " +
                               std::to_string(line_number));
    }
    if (buyer >= config.user_count || seller >= config.user_count ||
        category >= config.category_count || distance > 255) {
      throw std::runtime_error("read_transactions_csv: id out of range on "
                               "line " +
                               std::to_string(line_number));
    }
    tx.buyer = static_cast<NodeId>(buyer);
    tx.seller = static_cast<NodeId>(seller);
    tx.category = static_cast<InterestId>(category);
    tx.social_distance = static_cast<std::uint8_t>(distance);
    trace.transactions.push_back(tx);

    trace.reputation[tx.seller] += tx.buyer_rating;
    trace.reputation[tx.buyer] += tx.seller_rating;
    ++trace.transactions_as_seller[tx.seller];
    trace.profiles.record_request(tx.buyer, tx.category);
    categories[tx.buyer].insert(tx.category);
    categories[tx.seller].insert(tx.category);
    if (partners[tx.buyer].insert(tx.seller).second) {
      trace.business_network_size[tx.buyer] =
          static_cast<std::uint32_t>(partners[tx.buyer].size());
    }
    if (partners[tx.seller].insert(tx.buyer).second) {
      trace.business_network_size[tx.seller] =
          static_cast<std::uint32_t>(partners[tx.seller].size());
    }
  }
  for (NodeId u = 0; u < config.user_count; ++u) {
    std::vector<InterestId> set(categories[u].begin(), categories[u].end());
    trace.profiles.set_interests(u, set);
  }
  return trace;
}

}  // namespace st::trace
