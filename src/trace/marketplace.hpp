#pragma once
// Synthetic Overstock-style marketplace trace generator.
//
// The paper's Section 3 analyses a 450,000-transaction crawl of Overstock
// Auctions (2008-2010). That dataset is proprietary; per DESIGN.md we
// substitute a generator that reproduces the *statistical shapes* the paper
// reads off the crawl:
//   Fig. 1(a): reputation vs business-network size — strong linear coupling
//              (the two grow together by construction: every transaction
//              adds a rating and a business partner);
//   Fig. 1(b): reputation vs transactions received — proportional;
//   Fig. 2:    reputation vs personal-network size — weak coupling (the
//              friendship graph is generated independently of commerce);
//   Fig. 3:    rating value/frequency vs social distance — decreasing
//              (buyers prefer socially-close sellers and rate them higher);
//   Fig. 4(a): per-user purchases concentrate in top-ranked categories
//              (Zipf preference; top-3 ~ 88%);
//   Fig. 4(b): transactions skew toward high buyer-seller interest
//              similarity (buyers buy in their own categories from sellers
//              selling those categories).
//
// The generator is mechanism-based, not curve-fitted: it encodes the
// *behaviours* the paper names (reputation-guided seller choice, social
// proximity preference, interest-driven purchasing) and the shapes emerge.

#include <cstdint>
#include <vector>

#include "core/similarity.hpp"
#include "graph/social_graph.hpp"
#include "stats/rng.hpp"

namespace st::trace {

using core::InterestProfiles;
using graph::NodeId;
using reputation::InterestId;

struct TraceConfig {
  std::size_t user_count = 20000;
  std::size_t transaction_count = 100000;
  std::size_t category_count = 30;

  /// Personal-network model: Barabási–Albert attachment count.
  std::size_t friends_per_user = 3;

  /// Per-user declared interest-set size range.
  std::size_t min_interests = 1;
  std::size_t max_interests = 8;
  /// Zipf exponent of the *global* category popularity (which categories
  /// users declare) and of each user's preference over its own categories.
  double category_popularity_zipf = 1.1;
  double preference_zipf = 1.6;

  /// Buyer activity heavy tail (bounded Pareto shape).
  double activity_alpha = 1.2;

  /// Seller-choice weight: (1 + reputation)^reputation_bias multiplied by
  /// the social-proximity boost for distances 1/2/3 (>3 gets 1.0).
  double reputation_bias = 1.0;
  double distance_boost_1 = 8.0;
  double distance_boost_2 = 4.0;
  double distance_boost_3 = 2.0;

  /// Additive rating bonus by social distance (closer friends rate
  /// higher), applied before clamping to the Overstock range [-2, +2].
  double rating_bonus_1 = 0.8;
  double rating_bonus_2 = 0.4;
  double rating_bonus_3 = 0.15;

  /// Candidate sellers sampled per purchase (bounds per-transaction cost).
  std::size_t candidate_sample = 64;
};

/// One marketplace transaction with both parties' post-transaction ratings
/// (Overstock lets buyer and seller rate each other, range [-2, +2]).
struct Transaction {
  NodeId buyer = 0;
  NodeId seller = 0;
  InterestId category = 0;
  double buyer_rating = 0.0;   ///< buyer's rating of the seller
  double seller_rating = 0.0;  ///< seller's rating of the buyer
  /// Buyer-seller distance in the personal network at purchase time
  /// (0 = not connected within the 4-hop search horizon).
  std::uint8_t social_distance = 0;
};

/// The generated marketplace: transactions plus the state the Section 3
/// analysis pipelines read.
struct MarketplaceTrace {
  TraceConfig config;
  std::vector<Transaction> transactions;
  graph::SocialGraph personal_network;   ///< friendship graph
  InterestProfiles profiles;             ///< declared interests + purchases
  std::vector<double> reputation;        ///< accumulated rating sum per user
  std::vector<std::uint32_t> business_network_size;  ///< distinct partners
  std::vector<std::uint32_t> transactions_as_seller;

  MarketplaceTrace(const TraceConfig& cfg)
      : config(cfg),
        personal_network(cfg.user_count),
        profiles(cfg.user_count, cfg.category_count),
        reputation(cfg.user_count, 0.0),
        business_network_size(cfg.user_count, 0),
        transactions_as_seller(cfg.user_count, 0) {}
};

/// Generates a full trace. Deterministic given (config, rng state).
MarketplaceTrace generate_trace(const TraceConfig& config, stats::Rng& rng);

}  // namespace st::trace
