#include "trace/marketplace.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "graph/generators.hpp"
#include "stats/distributions.hpp"

namespace st::trace {

namespace {

/// Capped BFS from `origin` collecting distances <= 3 (the proximity
/// horizon the paper observes: "users possessing a social network
/// primarily transact with 2 to 3 hop partners").
void near_set(const graph::SocialGraph& g, NodeId origin,
              std::vector<std::uint8_t>& dist_out,
              std::vector<NodeId>& touched) {
  touched.clear();
  std::queue<std::pair<NodeId, std::uint8_t>> frontier;
  frontier.push({origin, 0});
  dist_out[origin] = 0;
  touched.push_back(origin);
  while (!frontier.empty()) {
    auto [node, d] = frontier.front();
    frontier.pop();
    if (d >= 3) continue;
    for (NodeId next : g.neighbors(node)) {
      if (dist_out[next] != 0xFF) continue;
      dist_out[next] = static_cast<std::uint8_t>(d + 1);
      touched.push_back(next);
      frontier.push({next, static_cast<std::uint8_t>(d + 1)});
    }
  }
}

double distance_boost(const TraceConfig& cfg, std::uint8_t d) {
  switch (d) {
    case 1:
      return cfg.distance_boost_1;
    case 2:
      return cfg.distance_boost_2;
    case 3:
      return cfg.distance_boost_3;
    default:
      return 1.0;
  }
}

double rating_bonus(const TraceConfig& cfg, std::uint8_t d) {
  switch (d) {
    case 1:
      return cfg.rating_bonus_1;
    case 2:
      return cfg.rating_bonus_2;
    case 3:
      return cfg.rating_bonus_3;
    default:
      return 0.0;
  }
}

}  // namespace

MarketplaceTrace generate_trace(const TraceConfig& config, stats::Rng& rng) {
  MarketplaceTrace trace(config);
  const std::size_t n = config.user_count;

  // 1. Personal network: preferential attachment — power-law degrees
  //    independent of (future) commerce, giving the weak Fig. 2 coupling.
  trace.personal_network =
      graph::barabasi_albert(n, config.friends_per_user, rng);

  // 2. Declared interests: set size uniform in [min, max]; categories drawn
  //    by global Zipf popularity; per-user preference over own categories
  //    is Zipf(preference_zipf) so the top-ranked few dominate purchases.
  stats::ZipfDistribution category_pop(config.category_count,
                                       config.category_popularity_zipf);
  std::vector<std::vector<InterestId>> interests(n);
  std::vector<std::vector<NodeId>> category_sellers(config.category_count);
  for (NodeId u = 0; u < n; ++u) {
    auto k = static_cast<std::size_t>(rng.uniform_u64(
        config.min_interests,
        std::min(config.max_interests, config.category_count)));
    std::unordered_set<InterestId> set;
    std::size_t guard = 0;
    while (set.size() < k && guard++ < 40 * k) {
      set.insert(static_cast<InterestId>(category_pop(rng)));
    }
    interests[u].assign(set.begin(), set.end());
    // Random preference order: the sample arrives unordered, shuffle to
    // decouple rank from category id.
    rng.shuffle(std::span<InterestId>(interests[u]));
    trace.profiles.set_interests(u, interests[u]);
    for (InterestId c : interests[u]) category_sellers[c].push_back(u);
  }

  // Per-seller intrinsic quality: drives ratings, hence reputation.
  std::vector<double> quality(n);
  for (NodeId u = 0; u < n; ++u) quality[u] = rng.uniform(0.4, 1.0);

  // 3. Buyer activity: bounded Pareto weights -> heavy-tailed buyer mix.
  stats::BoundedPareto activity(1.0, 1000.0, config.activity_alpha);
  std::vector<double> buyer_weight(n);
  for (NodeId u = 0; u < n; ++u) buyer_weight[u] = activity(rng);
  stats::DiscreteDistribution buyer_dist(buyer_weight);

  // Distinct-business-partner tracking.
  std::vector<std::unordered_set<NodeId>> partners(n);
  std::vector<std::uint8_t> dist_scratch(n, 0xFF);
  std::vector<NodeId> touched;

  trace.transactions.reserve(config.transaction_count);
  for (std::size_t t = 0; t < config.transaction_count; ++t) {
    auto buyer = static_cast<NodeId>(buyer_dist(rng));
    const auto& prefs = interests[buyer];
    if (prefs.empty()) continue;
    // Category by the buyer's Zipf preference over its own ranking.
    stats::ZipfDistribution pref(prefs.size(), config.preference_zipf);
    InterestId category = prefs[pref(rng)];

    const auto& sellers = category_sellers[category];
    if (sellers.size() < 2) continue;

    near_set(trace.personal_network, buyer, dist_scratch, touched);

    // Weighted seller choice among a bounded random candidate sample.
    NodeId chosen = buyer;
    double total_weight = 0.0;
    std::size_t sample =
        std::min(config.candidate_sample, sellers.size());
    for (std::size_t s = 0; s < sample; ++s) {
      NodeId cand = sellers[rng.index(sellers.size())];
      if (cand == buyer) continue;
      std::uint8_t d = dist_scratch[cand];
      double w = std::pow(1.0 + std::max(trace.reputation[cand], 0.0),
                          config.reputation_bias) *
                 distance_boost(config, d == 0xFF ? 4 : d);
      total_weight += w;
      if (rng.uniform() * total_weight < w) chosen = cand;
    }
    if (chosen == buyer) {
      for (NodeId v : touched) dist_scratch[v] = 0xFF;
      continue;
    }

    std::uint8_t d = dist_scratch[chosen];
    std::uint8_t recorded_distance = (d == 0xFF || d == 0) ? 0 : d;
    for (NodeId v : touched) dist_scratch[v] = 0xFF;

    // Ratings: seller quality maps to [-2, +2]; social closeness adds a
    // bonus (Fig. 3(a): closer pairs rate each other higher).
    double base = (quality[chosen] * 2.0 - 1.0) * 2.0;  // [-1.2, 2]
    double bonus = rating_bonus(config, recorded_distance);
    double noise = rng.normal(0.0, 0.35);
    double buyer_rating =
        std::clamp(std::round(base + bonus + noise), -2.0, 2.0);
    double seller_rating =
        std::clamp(std::round(1.6 + rng.normal(0.0, 0.4)), -2.0, 2.0);

    Transaction tx;
    tx.buyer = buyer;
    tx.seller = chosen;
    tx.category = category;
    tx.buyer_rating = buyer_rating;
    tx.seller_rating = seller_rating;
    tx.social_distance = recorded_distance;
    trace.transactions.push_back(tx);

    // Bookkeeping that feeds the Section 3 analysis.
    trace.reputation[chosen] += buyer_rating;
    trace.reputation[buyer] += seller_rating;
    ++trace.transactions_as_seller[chosen];
    trace.profiles.record_request(buyer, category);
    if (partners[buyer].insert(chosen).second)
      trace.business_network_size[buyer] =
          static_cast<std::uint32_t>(partners[buyer].size());
    if (partners[chosen].insert(buyer).second)
      trace.business_network_size[chosen] =
          static_cast<std::uint32_t>(partners[chosen].size());
  }

  return trace;
}

}  // namespace st::trace
