#include "core/social_state_cache.hpp"

#include <algorithm>

namespace st::core {

SocialStateCache::SocialStateCache()
    : shards_(std::make_unique<Shard[]>(kShards)) {
  auto& registry = obs::Obs::instance().registry();
  obs_hits_ = &registry.counter("social_cache.hits");
  obs_misses_ = &registry.counter("social_cache.misses");
  obs_invalidations_ = &registry.counter("social_cache.invalidations");
  obs_structure_hits_ = &registry.counter("social_cache.structure_hits");
  obs_structure_misses_ = &registry.counter("social_cache.structure_misses");
  obs_evictions_ = &registry.counter("social_cache.evictions");
}

void SocialStateCache::begin_interval(std::size_t evict_after) {
  const std::uint64_t gen =
      generation_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (evict_after == 0) return;
  // An entry last touched in interval T has sat untouched through
  // intervals T+1 .. gen-1; evict once that exceeds the configured
  // budget. erase_if visits in hash order, but pure erasure is
  // order-independent: which entries survive depends only on their
  // stamps, never on visit order, so determinism holds trivially.
  std::uint64_t erased = 0;
  const auto expired = [&](std::uint64_t last_touch) {
    return gen - last_touch > evict_after;
  };
  for (std::size_t s = 0; s < kShards; ++s) {
    Shard& shard = shards_[s];
    util::MutexLock lock(shard.mutex);
    // Evicted keys go to the erase log: the entries are valid right now,
    // but a consumer carrying their values would otherwise never hear
    // about a *later* state change (the revalidation sweep can only
    // report entries that still exist).
    erased += std::erase_if(shard.closeness, [&](const auto& kv) {
      if (!expired(kv.second.last_touch)) return false;
      if (tracking_) shard.dirty_closeness.push_back(kv.first);
      return true;
    });
    erased += std::erase_if(shard.similarity, [&](const auto& kv) {
      if (!expired(kv.second.last_touch)) return false;
      if (tracking_) shard.dirty_similarity.push_back(kv.first);
      return true;
    });
  }
  if (erased > 0) {
    evictions_.fetch_add(erased, std::memory_order_relaxed);
    obs_evictions_->add(erased);
  }
}

bool SocialStateCache::Validity::valid(
    const graph::SocialGraph& g) const noexcept {
  if (addition_epoch != kNoGate && g.edge_addition_epoch() != addition_epoch)
    return false;
  if (full_epoch != kNoGate && g.epoch() != full_epoch) return false;
  for (const Witness& w : witnesses) {
    const Revision current =
        w.structure ? g.structure_revision(w.node) : g.revision(w.node);
    if (current != w.rev) return false;
  }
  return true;
}

bool SocialStateCache::Validity::mentions(NodeId node) const noexcept {
  for (const Witness& w : witnesses) {
    if (w.node == node) return true;
  }
  return false;
}

std::vector<SocialStateCache::NodeId> SocialStateCache::common_cached(
    const graph::SocialGraph& g, NodeId i, NodeId j) {
  const NodeId lo = std::min(i, j);
  const NodeId hi = std::max(i, j);
  const std::uint64_t key = pack(lo, hi);
  Shard& shard = shards_[shard_of(key)];
  const Revision srev_lo = g.structure_revision(lo);
  const Revision srev_hi = g.structure_revision(hi);
  bool stale = false;
  {
    util::MutexLock lock(shard.mutex);
    auto it = shard.common_sets.find(key);
    if (it != shard.common_sets.end()) {
      if (it->second.srev_lo == srev_lo && it->second.srev_hi == srev_hi) {
        structure_hits_.fetch_add(1, std::memory_order_relaxed);
        obs_structure_hits_->add(1);
        return it->second.common;
      }
      stale = true;
    }
  }
  if (stale) {
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    obs_invalidations_->add(1);
  }
  structure_misses_.fetch_add(1, std::memory_order_relaxed);
  obs_structure_misses_->add(1);
  // common_friends is symmetric, so the canonical orientation returns the
  // same ascending set either direction was asked for.
  std::vector<NodeId> common = g.common_friends(lo, hi);
  {
    util::MutexLock lock(shard.mutex);
    shard.common_sets[key] = CommonEntry{common, srev_lo, srev_hi};
  }
  return common;
}

std::vector<SocialStateCache::NodeId> SocialStateCache::path_cached(
    const graph::SocialGraph& g, NodeId i, NodeId j, std::size_t max_hops) {
  const std::uint64_t key = pack(i, j);
  Shard& shard = shards_[shard_of(key)];
  const Revision aepoch = g.edge_addition_epoch();
  bool stale = false;
  {
    util::MutexLock lock(shard.mutex);
    auto it = shard.paths.find(key);
    if (it != shard.paths.end()) {
      const PathEntry& entry = it->second;
      bool ok = entry.addition_epoch == aepoch;
      for (std::size_t step = 0; ok && step < entry.node_srevs.size();
           ++step) {
        ok = g.structure_revision(entry.path[step]) == entry.node_srevs[step];
      }
      if (ok) {
        structure_hits_.fetch_add(1, std::memory_order_relaxed);
        obs_structure_hits_->add(1);
        return entry.path;
      }
      stale = true;
    }
  }
  if (stale) {
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    obs_invalidations_->add(1);
  }
  structure_misses_.fetch_add(1, std::memory_order_relaxed);
  obs_structure_misses_->add(1);
  auto found = g.shortest_path(i, j, max_hops);
  std::vector<NodeId> path = found ? std::move(*found) : std::vector<NodeId>{};
  // Witness the structural state of every path node but the sink: each
  // path edge bumps both its endpoints, so these revisions pin the path
  // itself; the addition epoch pins "no shorter / lex-smaller competitor
  // appeared anywhere".
  std::vector<Revision> srevs;
  if (!path.empty()) {
    srevs.reserve(path.size() - 1);
    for (std::size_t step = 0; step + 1 < path.size(); ++step) {
      srevs.push_back(g.structure_revision(path[step]));
    }
  }
  {
    util::MutexLock lock(shard.mutex);
    shard.paths[key] = PathEntry{path, aepoch, std::move(srevs)};
  }
  return path;
}

double SocialStateCache::compute_closeness(const ClosenessModel& model,
                                           const graph::SocialGraph& g,
                                           NodeId i, NodeId j,
                                           std::size_t max_hops,
                                           Validity& out) {
  // Branch structure mirrors ClosenessModel::closeness() exactly; each
  // branch records the weakest witness set that pins both the branch
  // choice and every value the branch read (see the header's table).
  if (i == j) return 0.0;  // constant: `out` stays gate- and witness-free

  if (g.adjacent(i, j)) {
    out.witnesses.push_back(Witness{i, false, g.revision(i)});
    return model.adjacent_closeness(g, i, j);
  }

  std::vector<NodeId> common = common_cached(g, i, j);
  if (!common.empty()) {
    if (common.size() + 2 > kMaxWitnesses) {
      out.full_epoch = g.epoch();
    } else {
      out.witnesses.reserve(common.size() + 2);
      out.witnesses.push_back(Witness{i, false, g.revision(i)});
      out.witnesses.push_back(Witness{j, true, g.structure_revision(j)});
      for (NodeId k : common) {
        out.witnesses.push_back(Witness{k, false, g.revision(k)});
      }
    }
    return model.fof_closeness(g, i, j, common);
  }

  std::vector<NodeId> path = path_cached(g, i, j, max_hops);
  if (path.size() < 2) {
    // Unreachable within max_hops: removals and type changes can never
    // make a pair reachable, so the entry lives until a brand-new
    // adjacency appears anywhere.
    out.addition_epoch = g.edge_addition_epoch();
    return 0.0;
  }
  if (path.size() - 1 > kMaxWitnesses) {
    out.full_epoch = g.epoch();
  } else {
    // Full revisions of the non-sink path nodes cover both the f(p, *)
    // reads of Eq. 4 and any structural change touching a path edge; the
    // addition gate covers shorter / lex-smaller paths appearing.
    out.addition_epoch = g.edge_addition_epoch();
    out.witnesses.reserve(path.size() - 1);
    for (std::size_t step = 0; step + 1 < path.size(); ++step) {
      out.witnesses.push_back(Witness{path[step], false, g.revision(path[step])});
    }
  }
  return model.bottleneck_closeness(g, path);
}

double SocialStateCache::closeness(const ClosenessModel& model,
                                   const graph::SocialGraph& g, NodeId i,
                                   NodeId j, std::size_t max_hops) {
  const std::uint64_t key = pack(i, j);
  Shard& shard = shards_[shard_of(key)];
  bool stale = false;
  {
    util::MutexLock lock(shard.mutex);
    auto it = shard.closeness.find(key);
    if (it != shard.closeness.end()) {
      if (it->second.validity.valid(g)) {
        it->second.last_touch = generation_.load(std::memory_order_relaxed);
        hits_.fetch_add(1, std::memory_order_relaxed);
        obs_hits_->add(1);
        return it->second.value;
      }
      stale = true;
      // About to be replaced with a fresh value — log it so any carried
      // copy of the old value is re-derived (belt and braces: after a
      // collect_dirty() sweep no reachable entry can be stale, but the
      // tracking contract is "every erasure/replacement is logged").
      if (tracking_) shard.dirty_closeness.push_back(key);
    }
  }
  if (stale) {
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    obs_invalidations_->add(1);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs_misses_->add(1);
  ClosenessEntry entry;
  entry.value = compute_closeness(model, g, i, j, max_hops, entry.validity);
  entry.last_touch = generation_.load(std::memory_order_relaxed);
  const double value = entry.value;
  // Index refs for the witness-targeted sweep, staged outside the lock so
  // the critical section only publishes. Refs for a replaced entry's old
  // witnesses go stale in place — collect_dirty() prunes any ref whose
  // entry no longer witnesses the node.
  std::vector<std::pair<NodeId, std::uint64_t>> new_refs;
  if (tracking_) {
    new_refs.reserve(entry.validity.witnesses.size());
    for (const Witness& w : entry.validity.witnesses) {
      new_refs.emplace_back(w.node, key);
    }
  }
  {
    util::MutexLock lock(shard.mutex);
    if (tracking_) {
      shard.witness_refs.insert(shard.witness_refs.end(), new_refs.begin(),
                                new_refs.end());
      if (entry.validity.addition_epoch != kNoGate ||
          entry.validity.full_epoch != kNoGate) {
        shard.gated_closeness.push_back(key);
      }
    }
    shard.closeness[key] = std::move(entry);
  }
  return value;
}

double SocialStateCache::similarity(const InterestProfiles& profiles, NodeId a,
                                    NodeId b, bool weighted) {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  const std::uint64_t key = pack(lo, hi);
  Shard& shard = shards_[shard_of(key)];
  const Revision rev_lo = profiles.revision(lo);
  const Revision rev_hi = profiles.revision(hi);
  bool stale = false;
  {
    util::MutexLock lock(shard.mutex);
    auto it = shard.similarity.find(key);
    if (it != shard.similarity.end()) {
      if (it->second.rev_lo == rev_lo && it->second.rev_hi == rev_hi) {
        it->second.last_touch = generation_.load(std::memory_order_relaxed);
        hits_.fetch_add(1, std::memory_order_relaxed);
        obs_hits_->add(1);
        return it->second.value;
      }
      stale = true;
      if (tracking_) shard.dirty_similarity.push_back(key);
    }
  }
  if (stale) {
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    obs_invalidations_->add(1);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs_misses_->add(1);
  // Every similarity variant is symmetric term by term (ascending merge of
  // the two interest sets, min()/count per term), so evaluating the
  // canonical orientation is bit-identical to the asked-for one.
  const double value = weighted ? profiles.weighted_similarity(lo, hi)
                                : profiles.similarity(lo, hi);
  {
    util::MutexLock lock(shard.mutex);
    if (tracking_) {
      // One ref per endpoint: whichever profile moves finds the entry.
      shard.sim_refs.emplace_back(lo, key);
      shard.sim_refs.emplace_back(hi, key);
    }
    shard.similarity[key] = SimilarityEntry{
        value, rev_lo, rev_hi,
        generation_.load(std::memory_order_relaxed)};
  }
  return value;
}

void SocialStateCache::invalidate_node(NodeId node) {
  const auto key_mentions = [node](std::uint64_t key) {
    return static_cast<NodeId>(key >> 32U) == node ||
           static_cast<NodeId>(key & 0xFFFFFFFFU) == node;
  };
  std::uint64_t erased = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    Shard& shard = shards_[s];
    util::MutexLock lock(shard.mutex);
    erased += std::erase_if(shard.closeness, [&](const auto& kv) {
      if (!key_mentions(kv.first) && !kv.second.validity.mentions(node))
        return false;
      if (tracking_) shard.dirty_closeness.push_back(kv.first);
      return true;
    });
    erased += std::erase_if(shard.similarity, [&](const auto& kv) {
      if (!key_mentions(kv.first)) return false;
      if (tracking_) shard.dirty_similarity.push_back(kv.first);
      return true;
    });
    erased += std::erase_if(shard.common_sets, [&](const auto& kv) {
      return key_mentions(kv.first) ||
             std::find(kv.second.common.begin(), kv.second.common.end(),
                       node) != kv.second.common.end();
    });
    erased += std::erase_if(shard.paths, [&](const auto& kv) {
      return key_mentions(kv.first) ||
             std::find(kv.second.path.begin(), kv.second.path.end(), node) !=
                 kv.second.path.end();
    });
  }
  if (erased > 0) {
    invalidations_.fetch_add(erased, std::memory_order_relaxed);
    obs_invalidations_->add(erased);
  }
}

void SocialStateCache::clear() {
  for (std::size_t s = 0; s < kShards; ++s) {
    Shard& shard = shards_[s];
    util::MutexLock lock(shard.mutex);
    if (tracking_) {
      // Value-entry removals must hit the erase log even on a wholesale
      // drop, else a consumer could keep carrying values whose later
      // invalidation the revalidation sweep can no longer see. erase_if
      // visits in hash order, which is fine: collect_dirty() sorts the
      // drained log before anything order-sensitive consumes it.
      std::erase_if(shard.closeness, [&](const auto& kv) {
        shard.dirty_closeness.push_back(kv.first);
        return true;
      });
      std::erase_if(shard.similarity, [&](const auto& kv) {
        shard.dirty_similarity.push_back(kv.first);
        return true;
      });
    } else {
      shard.closeness.clear();
      shard.similarity.clear();
    }
    shard.common_sets.clear();
    shard.paths.clear();
    shard.witness_refs.clear();
    shard.sim_refs.clear();
    shard.gated_closeness.clear();
  }
}

void SocialStateCache::compact_closeness_index(Shard& shard) {
  // Refs go stale when entries are evicted, invalidated wholesale, or
  // re-stored via a different branch, and a stale ref is only pruned when
  // its node next changes. Rebuild from the live entries once the list
  // clearly outgrows them (a live entry owns at most kMaxWitnesses refs,
  // typically far fewer).
  if (shard.witness_refs.size() <= 256 ||
      shard.witness_refs.size() <= kMaxWitnesses * shard.closeness.size()) {
    return;
  }
  // Flatten the live keys and sort before rebuilding so the rebuilt index
  // is a pure function of the shard's contents, not of hash order.
  std::vector<std::uint64_t> keys;
  keys.reserve(shard.closeness.size());
  for (const auto& kv : shard.closeness) keys.push_back(kv.first);
  std::sort(keys.begin(), keys.end());
  shard.witness_refs.clear();
  shard.gated_closeness.clear();
  for (const std::uint64_t key : keys) {
    const Validity& v = shard.closeness.find(key)->second.validity;
    for (const Witness& w : v.witnesses) {
      shard.witness_refs.emplace_back(w.node, key);
    }
    if (v.addition_epoch != kNoGate || v.full_epoch != kNoGate) {
      shard.gated_closeness.push_back(key);
    }
  }
}

void SocialStateCache::compact_similarity_index(Shard& shard) {
  // Re-stores append a fresh endpoint pair each time, so stale refs
  // accumulate; rebuild once they dominate the live ones (each live entry
  // owns exactly two).
  if (shard.sim_refs.size() <= 64 ||
      shard.sim_refs.size() <= 6 * shard.similarity.size()) {
    return;
  }
  std::vector<std::uint64_t> keys;
  keys.reserve(shard.similarity.size());
  for (const auto& kv : shard.similarity) keys.push_back(kv.first);
  std::sort(keys.begin(), keys.end());
  shard.sim_refs.clear();
  for (const std::uint64_t key : keys) {
    shard.sim_refs.emplace_back(key_first(key), key);
    shard.sim_refs.emplace_back(key_second(key), key);
  }
}

const SocialStateCache::RevisionDelta& SocialStateCache::RevisionTracker::
    collect(const graph::SocialGraph& g, const InterestProfiles& profiles) {
  // Sweep gates: while g.epoch() holds, no graph revision moved anywhere,
  // so every surviving closeness entry that was valid at the previous
  // collect is still valid and the sweep may be skipped exactly (same
  // argument for profiles.epoch() and similarity entries).
  delta_.sweep_closeness = g.epoch() != last_graph_epoch_;
  delta_.sweep_similarity = profiles.epoch() != last_profile_epoch_;
  last_graph_epoch_ = g.epoch();
  last_profile_epoch_ = profiles.epoch();
  // Changed-node bitmaps: diff every per-node revision against the
  // snapshot of the previous collect. An O(n) integer scan — paid once
  // per tracker per interval, however many shard caches consume the
  // delta — that makes each cache's sweep proportional to the refs of
  // *changed* nodes rather than to its total entry count.
  if (delta_.sweep_closeness) {
    const std::size_t n = g.size();
    if (last_node_revs_.size() < n) last_node_revs_.resize(n, kNoGate);
    if (delta_.graph_changed.size() < n) delta_.graph_changed.resize(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      const Revision rev = g.revision(static_cast<NodeId>(v));
      delta_.graph_changed[v] = last_node_revs_[v] != rev ? 1 : 0;
      last_node_revs_[v] = rev;
    }
  }
  if (delta_.sweep_similarity) {
    const std::size_t n = profiles.node_count();
    if (last_profile_revs_.size() < n) last_profile_revs_.resize(n, kNoGate);
    if (delta_.profile_changed.size() < n) {
      delta_.profile_changed.resize(n, 0);
    }
    for (std::size_t v = 0; v < n; ++v) {
      const Revision rev = profiles.revision(static_cast<NodeId>(v));
      delta_.profile_changed[v] = last_profile_revs_[v] != rev ? 1 : 0;
      last_profile_revs_[v] = rev;
    }
  }
  return delta_;
}

SocialStateCache::DirtyKeys SocialStateCache::collect_dirty(
    const graph::SocialGraph& g, const InterestProfiles& profiles) {
  if (!tracking_) return DirtyKeys{};
  return collect_dirty(g, profiles, tracker_.collect(g, profiles));
}

SocialStateCache::DirtyKeys SocialStateCache::collect_dirty(
    const graph::SocialGraph& g, const InterestProfiles& profiles,
    const RevisionDelta& delta) {
  DirtyKeys out;
  if (!tracking_) return out;
  // The erase logs are drained unconditionally — eviction,
  // invalidate_node and clear remove entries without any epoch movement;
  // the revalidation sweeps run only when the delta says the matching
  // epoch moved.
  const bool sweep_closeness = delta.sweep_closeness;
  const bool sweep_similarity = delta.sweep_similarity;
  std::uint64_t swept = 0;
  // Swept keys are staged into a reused buffer with pre-reserved capacity
  // so the erase walks stay allocation-free under the shard lock, then
  // bulk-appended to `out`.
  std::vector<std::uint64_t> staged;
  for (std::size_t s = 0; s < kShards; ++s) {
    Shard& shard = shards_[s];
    util::MutexLock lock(shard.mutex);
    out.closeness.insert(out.closeness.end(), shard.dirty_closeness.begin(),
                         shard.dirty_closeness.end());
    shard.dirty_closeness.clear();
    out.similarity.insert(out.similarity.end(),
                          shard.dirty_similarity.begin(),
                          shard.dirty_similarity.end());
    shard.dirty_similarity.clear();
    const std::size_t cap = shard.gated_closeness.size() +
                            shard.witness_refs.size() +
                            shard.sim_refs.size();
    if (staged.size() < cap) staged.resize(cap);
    if (sweep_closeness) {
      // Epoch-gated entries first: a full-epoch gate breaks on any change
      // (and the epoch moved, or we would not be here); an addition gate
      // only when the addition epoch moved — valid() distinguishes them.
      // A key whose entry lost its gates was re-stored via a witness-only
      // branch and is covered by the witness refs below.
      std::size_t n_staged = 0;
      std::size_t keep = 0;
      for (const std::uint64_t key : shard.gated_closeness) {
        auto it = shard.closeness.find(key);
        if (it == shard.closeness.end()) continue;
        const Validity& v = it->second.validity;
        if (v.addition_epoch == kNoGate && v.full_epoch == kNoGate) continue;
        if (v.valid(g)) {
          shard.gated_closeness[keep++] = key;
          continue;
        }
        staged[n_staged++] = key;
        shard.closeness.erase(it);
        ++swept;
      }
      shard.gated_closeness.resize(keep);
      // Witness refs: only refs whose node actually changed cost a map
      // lookup; a surviving entry keeps its ref, a dead or re-branched
      // one drops it.
      std::size_t wkeep = 0;
      for (const auto& ref : shard.witness_refs) {
        if (!delta.graph_changed[ref.first]) {
          shard.witness_refs[wkeep++] = ref;
          continue;
        }
        auto it = shard.closeness.find(ref.second);
        if (it == shard.closeness.end()) continue;
        const Validity& v = it->second.validity;
        if (!v.mentions(ref.first)) continue;
        if (v.valid(g)) {
          shard.witness_refs[wkeep++] = ref;
          continue;
        }
        staged[n_staged++] = ref.second;
        shard.closeness.erase(it);
        ++swept;
      }
      shard.witness_refs.resize(wkeep);
      out.closeness.insert(out.closeness.end(), staged.begin(),
                           staged.begin() + static_cast<std::ptrdiff_t>(
                                                n_staged));
      compact_closeness_index(shard);
    }
    if (sweep_similarity) {
      std::size_t n_staged = 0;
      std::size_t skeep = 0;
      for (const auto& ref : shard.sim_refs) {
        if (!delta.profile_changed[ref.first]) {
          shard.sim_refs[skeep++] = ref;
          continue;
        }
        auto it = shard.similarity.find(ref.second);
        if (it == shard.similarity.end()) continue;
        if (profiles.revision(key_first(ref.second)) == it->second.rev_lo &&
            profiles.revision(key_second(ref.second)) == it->second.rev_hi) {
          shard.sim_refs[skeep++] = ref;
          continue;
        }
        staged[n_staged++] = ref.second;
        shard.similarity.erase(it);
        ++swept;
      }
      shard.sim_refs.resize(skeep);
      out.similarity.insert(out.similarity.end(), staged.begin(),
                            staged.begin() + static_cast<std::ptrdiff_t>(
                                                 n_staged));
      compact_similarity_index(shard);
    }
  }
  if (swept > 0) {
    invalidations_.fetch_add(swept, std::memory_order_relaxed);
    obs_invalidations_->add(swept);
  }
  // Logs and sweep appends arrive in shard/hash order; sorting here pins
  // the order every downstream consumer sees, and duplicates (an entry
  // replaced twice, or logged then re-erased) collapse to one key.
  std::sort(out.closeness.begin(), out.closeness.end());
  out.closeness.erase(std::unique(out.closeness.begin(), out.closeness.end()),
                      out.closeness.end());
  std::sort(out.similarity.begin(), out.similarity.end());
  out.similarity.erase(
      std::unique(out.similarity.begin(), out.similarity.end()),
      out.similarity.end());
  return out;
}

std::size_t SocialStateCache::size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    util::MutexLock lock(shards_[s].mutex);
    total += shards_[s].closeness.size() + shards_[s].similarity.size();
  }
  return total;
}

std::size_t SocialStateCache::structure_size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    util::MutexLock lock(shards_[s].mutex);
    total += shards_[s].common_sets.size() + shards_[s].paths.size();
  }
  return total;
}

SocialStateCache::StatsSnapshot SocialStateCache::stats() const noexcept {
  StatsSnapshot snap;
  snap.hits = hits_.load(std::memory_order_relaxed);
  snap.misses = misses_.load(std::memory_order_relaxed);
  snap.invalidations = invalidations_.load(std::memory_order_relaxed);
  snap.structure_hits = structure_hits_.load(std::memory_order_relaxed);
  snap.structure_misses = structure_misses_.load(std::memory_order_relaxed);
  snap.evictions = evictions_.load(std::memory_order_relaxed);
  return snap;
}

}  // namespace st::core
