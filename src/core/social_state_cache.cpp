#include "core/social_state_cache.hpp"

#include <algorithm>

namespace st::core {

SocialStateCache::SocialStateCache()
    : shards_(std::make_unique<Shard[]>(kShards)) {
  auto& registry = obs::Obs::instance().registry();
  obs_hits_ = &registry.counter("social_cache.hits");
  obs_misses_ = &registry.counter("social_cache.misses");
  obs_invalidations_ = &registry.counter("social_cache.invalidations");
  obs_structure_hits_ = &registry.counter("social_cache.structure_hits");
  obs_structure_misses_ = &registry.counter("social_cache.structure_misses");
  obs_evictions_ = &registry.counter("social_cache.evictions");
}

void SocialStateCache::begin_interval(std::size_t evict_after) {
  const std::uint64_t gen =
      generation_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (evict_after == 0) return;
  // An entry last touched in interval T has sat untouched through
  // intervals T+1 .. gen-1; evict once that exceeds the configured
  // budget. erase_if visits in hash order, but pure erasure is
  // order-independent: which entries survive depends only on their
  // stamps, never on visit order, so determinism holds trivially.
  std::uint64_t erased = 0;
  const auto expired = [&](std::uint64_t last_touch) {
    return gen - last_touch > evict_after;
  };
  for (std::size_t s = 0; s < kShards; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard lock(shard.mutex);
    erased += std::erase_if(shard.closeness, [&](const auto& kv) {
      return expired(kv.second.last_touch);
    });
    erased += std::erase_if(shard.similarity, [&](const auto& kv) {
      return expired(kv.second.last_touch);
    });
  }
  if (erased > 0) {
    evictions_.fetch_add(erased, std::memory_order_relaxed);
    obs_evictions_->add(erased);
  }
}

bool SocialStateCache::Validity::valid(
    const graph::SocialGraph& g) const noexcept {
  if (structure_epoch != kNoGate && g.structure_epoch() != structure_epoch)
    return false;
  if (full_epoch != kNoGate && g.epoch() != full_epoch) return false;
  for (const Witness& w : witnesses) {
    const Revision current =
        w.structure ? g.structure_revision(w.node) : g.revision(w.node);
    if (current != w.rev) return false;
  }
  return true;
}

bool SocialStateCache::Validity::mentions(NodeId node) const noexcept {
  for (const Witness& w : witnesses) {
    if (w.node == node) return true;
  }
  return false;
}

std::vector<SocialStateCache::NodeId> SocialStateCache::common_cached(
    const graph::SocialGraph& g, NodeId i, NodeId j) {
  const NodeId lo = std::min(i, j);
  const NodeId hi = std::max(i, j);
  const std::uint64_t key = pack(lo, hi);
  Shard& shard = shards_[shard_of(key)];
  const Revision srev_lo = g.structure_revision(lo);
  const Revision srev_hi = g.structure_revision(hi);
  bool stale = false;
  {
    std::lock_guard lock(shard.mutex);
    auto it = shard.common_sets.find(key);
    if (it != shard.common_sets.end()) {
      if (it->second.srev_lo == srev_lo && it->second.srev_hi == srev_hi) {
        structure_hits_.fetch_add(1, std::memory_order_relaxed);
        obs_structure_hits_->add(1);
        return it->second.common;
      }
      stale = true;
    }
  }
  if (stale) {
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    obs_invalidations_->add(1);
  }
  structure_misses_.fetch_add(1, std::memory_order_relaxed);
  obs_structure_misses_->add(1);
  // common_friends is symmetric, so the canonical orientation returns the
  // same ascending set either direction was asked for.
  std::vector<NodeId> common = g.common_friends(lo, hi);
  {
    std::lock_guard lock(shard.mutex);
    shard.common_sets[key] = CommonEntry{common, srev_lo, srev_hi};
  }
  return common;
}

std::vector<SocialStateCache::NodeId> SocialStateCache::path_cached(
    const graph::SocialGraph& g, NodeId i, NodeId j, std::size_t max_hops) {
  const std::uint64_t key = pack(i, j);
  Shard& shard = shards_[shard_of(key)];
  const Revision sepoch = g.structure_epoch();
  bool stale = false;
  {
    std::lock_guard lock(shard.mutex);
    auto it = shard.paths.find(key);
    if (it != shard.paths.end()) {
      if (it->second.structure_epoch == sepoch) {
        structure_hits_.fetch_add(1, std::memory_order_relaxed);
        obs_structure_hits_->add(1);
        return it->second.path;
      }
      stale = true;
    }
  }
  if (stale) {
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    obs_invalidations_->add(1);
  }
  structure_misses_.fetch_add(1, std::memory_order_relaxed);
  obs_structure_misses_->add(1);
  auto found = g.shortest_path(i, j, max_hops);
  std::vector<NodeId> path = found ? std::move(*found) : std::vector<NodeId>{};
  {
    std::lock_guard lock(shard.mutex);
    shard.paths[key] = PathEntry{path, sepoch};
  }
  return path;
}

double SocialStateCache::compute_closeness(const ClosenessModel& model,
                                           const graph::SocialGraph& g,
                                           NodeId i, NodeId j,
                                           std::size_t max_hops,
                                           Validity& out) {
  // Branch structure mirrors ClosenessModel::closeness() exactly; each
  // branch records the weakest witness set that pins both the branch
  // choice and every value the branch read (see the header's table).
  if (i == j) return 0.0;  // constant: `out` stays gate- and witness-free

  if (g.adjacent(i, j)) {
    out.witnesses.push_back(Witness{i, false, g.revision(i)});
    return model.adjacent_closeness(g, i, j);
  }

  std::vector<NodeId> common = common_cached(g, i, j);
  if (!common.empty()) {
    if (common.size() + 2 > kMaxWitnesses) {
      out.full_epoch = g.epoch();
    } else {
      out.witnesses.reserve(common.size() + 2);
      out.witnesses.push_back(Witness{i, false, g.revision(i)});
      out.witnesses.push_back(Witness{j, true, g.structure_revision(j)});
      for (NodeId k : common) {
        out.witnesses.push_back(Witness{k, false, g.revision(k)});
      }
    }
    return model.fof_closeness(g, i, j, common);
  }

  std::vector<NodeId> path = path_cached(g, i, j, max_hops);
  if (path.size() < 2) {
    // Unreachable within max_hops: purely structural, so the entry lives
    // until any edge changes anywhere.
    out.structure_epoch = g.structure_epoch();
    return 0.0;
  }
  if (path.size() - 1 > kMaxWitnesses) {
    out.full_epoch = g.epoch();
  } else {
    out.structure_epoch = g.structure_epoch();
    out.witnesses.reserve(path.size() - 1);
    for (std::size_t step = 0; step + 1 < path.size(); ++step) {
      out.witnesses.push_back(Witness{path[step], false, g.revision(path[step])});
    }
  }
  return model.bottleneck_closeness(g, path);
}

double SocialStateCache::closeness(const ClosenessModel& model,
                                   const graph::SocialGraph& g, NodeId i,
                                   NodeId j, std::size_t max_hops) {
  const std::uint64_t key = pack(i, j);
  Shard& shard = shards_[shard_of(key)];
  bool stale = false;
  {
    std::lock_guard lock(shard.mutex);
    auto it = shard.closeness.find(key);
    if (it != shard.closeness.end()) {
      if (it->second.validity.valid(g)) {
        it->second.last_touch = generation_.load(std::memory_order_relaxed);
        hits_.fetch_add(1, std::memory_order_relaxed);
        obs_hits_->add(1);
        return it->second.value;
      }
      stale = true;
    }
  }
  if (stale) {
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    obs_invalidations_->add(1);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs_misses_->add(1);
  ClosenessEntry entry;
  entry.value = compute_closeness(model, g, i, j, max_hops, entry.validity);
  entry.last_touch = generation_.load(std::memory_order_relaxed);
  const double value = entry.value;
  {
    std::lock_guard lock(shard.mutex);
    shard.closeness[key] = std::move(entry);
  }
  return value;
}

double SocialStateCache::similarity(const InterestProfiles& profiles, NodeId a,
                                    NodeId b, bool weighted) {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  const std::uint64_t key = pack(lo, hi);
  Shard& shard = shards_[shard_of(key)];
  const Revision rev_lo = profiles.revision(lo);
  const Revision rev_hi = profiles.revision(hi);
  bool stale = false;
  {
    std::lock_guard lock(shard.mutex);
    auto it = shard.similarity.find(key);
    if (it != shard.similarity.end()) {
      if (it->second.rev_lo == rev_lo && it->second.rev_hi == rev_hi) {
        it->second.last_touch = generation_.load(std::memory_order_relaxed);
        hits_.fetch_add(1, std::memory_order_relaxed);
        obs_hits_->add(1);
        return it->second.value;
      }
      stale = true;
    }
  }
  if (stale) {
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    obs_invalidations_->add(1);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs_misses_->add(1);
  // Every similarity variant is symmetric term by term (ascending merge of
  // the two interest sets, min()/count per term), so evaluating the
  // canonical orientation is bit-identical to the asked-for one.
  const double value = weighted ? profiles.weighted_similarity(lo, hi)
                                : profiles.similarity(lo, hi);
  {
    std::lock_guard lock(shard.mutex);
    shard.similarity[key] = SimilarityEntry{
        value, rev_lo, rev_hi,
        generation_.load(std::memory_order_relaxed)};
  }
  return value;
}

void SocialStateCache::invalidate_node(NodeId node) {
  const auto key_mentions = [node](std::uint64_t key) {
    return static_cast<NodeId>(key >> 32U) == node ||
           static_cast<NodeId>(key & 0xFFFFFFFFU) == node;
  };
  std::uint64_t erased = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard lock(shard.mutex);
    erased += std::erase_if(shard.closeness, [&](const auto& kv) {
      return key_mentions(kv.first) || kv.second.validity.mentions(node);
    });
    erased += std::erase_if(shard.similarity, [&](const auto& kv) {
      return key_mentions(kv.first);
    });
    erased += std::erase_if(shard.common_sets, [&](const auto& kv) {
      return key_mentions(kv.first) ||
             std::find(kv.second.common.begin(), kv.second.common.end(),
                       node) != kv.second.common.end();
    });
    erased += std::erase_if(shard.paths, [&](const auto& kv) {
      return key_mentions(kv.first) ||
             std::find(kv.second.path.begin(), kv.second.path.end(), node) !=
                 kv.second.path.end();
    });
  }
  if (erased > 0) {
    invalidations_.fetch_add(erased, std::memory_order_relaxed);
    obs_invalidations_->add(erased);
  }
}

void SocialStateCache::clear() {
  for (std::size_t s = 0; s < kShards; ++s) {
    std::lock_guard lock(shards_[s].mutex);
    shards_[s].closeness.clear();
    shards_[s].similarity.clear();
    shards_[s].common_sets.clear();
    shards_[s].paths.clear();
  }
}

std::size_t SocialStateCache::size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    std::lock_guard lock(shards_[s].mutex);
    total += shards_[s].closeness.size() + shards_[s].similarity.size();
  }
  return total;
}

std::size_t SocialStateCache::structure_size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    std::lock_guard lock(shards_[s].mutex);
    total += shards_[s].common_sets.size() + shards_[s].paths.size();
  }
  return total;
}

SocialStateCache::StatsSnapshot SocialStateCache::stats() const noexcept {
  StatsSnapshot snap;
  snap.hits = hits_.load(std::memory_order_relaxed);
  snap.misses = misses_.load(std::memory_order_relaxed);
  snap.invalidations = invalidations_.load(std::memory_order_relaxed);
  snap.structure_hits = structure_hits_.load(std::memory_order_relaxed);
  snap.structure_misses = structure_misses_.load(std::memory_order_relaxed);
  snap.evictions = evictions_.load(std::memory_order_relaxed);
  return snap;
}

}  // namespace st::core
