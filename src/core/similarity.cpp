#include "core/similarity.hpp"

#include <algorithm>
#include <stdexcept>

namespace st::core {

InterestProfiles::InterestProfiles(std::size_t node_count,
                                   std::size_t category_count)
    : node_count_(node_count),
      categories_(category_count),
      offsets_(node_count + 1, 0),
      overlay_slot_(node_count, kNoOverlay),
      request_counts_(node_count * category_count, 0.0),
      request_totals_(node_count, 0.0),
      revisions_(node_count, 0) {
  if (category_count == 0)
    throw std::invalid_argument("InterestProfiles: need >= 1 category");
}

void InterestProfiles::check_node(NodeId node) const {
  if (node >= node_count_)
    throw std::out_of_range("InterestProfiles: node out of range");
}

void InterestProfiles::bump(NodeId node) {
  ++revisions_[node];
  ++epoch_;
}

InterestProfiles::Row InterestProfiles::row(NodeId node) const noexcept {
  const std::uint32_t slot = overlay_slot_[node];
  if (slot != kNoOverlay) {
    const std::vector<InterestId>& r = overlay_[slot];
    return {r.data(), r.size()};
  }
  const std::uint64_t begin = offsets_[node];
  return {ids_.data() + begin,
          static_cast<std::size_t>(offsets_[node + 1] - begin)};
}

std::vector<InterestId>& InterestProfiles::materialize(NodeId node) {
  std::uint32_t slot = overlay_slot_[node];
  if (slot == kNoOverlay) {
    slot = static_cast<std::uint32_t>(overlay_.size());
    const std::uint64_t begin = offsets_[node];
    const std::uint64_t end = offsets_[node + 1];
    overlay_.emplace_back(ids_.begin() + static_cast<std::ptrdiff_t>(begin),
                          ids_.begin() + static_cast<std::ptrdiff_t>(end));
    overlay_slot_[node] = slot;
    overlay_entries_ += overlay_.back().size();
    ++overlay_live_;
  }
  return overlay_[slot];
}

void InterestProfiles::rebuild() {
  std::vector<std::uint64_t> offsets(node_count_ + 1, 0);
  std::uint64_t total = 0;
  for (NodeId node = 0; node < node_count_; ++node) {
    offsets[node] = total;
    total += row(node).size;
  }
  offsets[node_count_] = total;
  std::vector<InterestId> ids(total);
  for (NodeId node = 0; node < node_count_; ++node) {
    const Row r = row(node);
    std::copy(r.ids, r.ids + r.size,
              ids.begin() + static_cast<std::ptrdiff_t>(offsets[node]));
  }
  offsets_ = std::move(offsets);
  ids_ = std::move(ids);
  overlay_.clear();
  std::fill(overlay_slot_.begin(), overlay_slot_.end(), kNoOverlay);
  overlay_entries_ = 0;
  overlay_live_ = 0;
  ++rebuilds_;
}

void InterestProfiles::begin_interval() {
  if (delta_mass() > 0) rebuild();
}

void InterestProfiles::set_interests(NodeId node,
                                     std::span<const InterestId> interests) {
  check_node(node);
  std::vector<InterestId> next;
  for (InterestId id : interests) {
    if (id < categories_) next.push_back(id);
  }
  std::sort(next.begin(), next.end());
  next.erase(std::unique(next.begin(), next.end()), next.end());
  const Row current = row(node);
  if (next.size() != current.size ||
      !std::equal(next.begin(), next.end(), current.ids)) {
    const std::size_t before = materialize(node).size();
    overlay_[overlay_slot_[node]] = std::move(next);
    overlay_entries_ += overlay_[overlay_slot_[node]].size() - before;
    bump(node);
  }
  maybe_rebuild();
}

void InterestProfiles::add_interest(NodeId node, InterestId interest) {
  check_node(node);
  if (interest >= categories_) return;
  const Row current = row(node);
  const InterestId* end = current.ids + current.size;
  const InterestId* it = std::lower_bound(current.ids, end, interest);
  if (it == end || *it != interest) {
    std::vector<InterestId>& set = materialize(node);
    set.insert(std::lower_bound(set.begin(), set.end(), interest), interest);
    ++overlay_entries_;
    bump(node);
  }
  maybe_rebuild();
}

void InterestProfiles::remove_interest(NodeId node, InterestId interest) {
  check_node(node);
  const Row current = row(node);
  const InterestId* end = current.ids + current.size;
  const InterestId* it = std::lower_bound(current.ids, end, interest);
  if (it != end && *it == interest) {
    std::vector<InterestId>& set = materialize(node);
    set.erase(std::lower_bound(set.begin(), set.end(), interest));
    --overlay_entries_;
    bump(node);
  }
  maybe_rebuild();
}

std::span<const InterestId> InterestProfiles::declared(NodeId node) const {
  check_node(node);
  const Row r = row(node);
  return {r.ids, r.size};
}

void InterestProfiles::record_request(NodeId node, InterestId category,
                                      double count) {
  check_node(node);
  if (category >= categories_ || count <= 0.0) return;
  request_counts_[node * categories_ + category] += count;
  request_totals_[node] += count;
  bump(node);
}

double InterestProfiles::request_weight(NodeId node,
                                        InterestId category) const {
  check_node(node);
  if (category >= categories_ || request_totals_[node] <= 0.0) return 0.0;
  return request_counts_[node * categories_ + category] /
         request_totals_[node];
}

double InterestProfiles::total_requests(NodeId node) const {
  check_node(node);
  return request_totals_[node];
}

std::vector<InterestId> InterestProfiles::effective(NodeId node) const {
  check_node(node);
  const Row r = row(node);
  std::vector<InterestId> result(r.ids, r.ids + r.size);
  const double* counts = request_counts_.data() + node * categories_;
  for (std::size_t c = 0; c < categories_; ++c) {
    if (counts[c] > 0.0) {
      auto id = static_cast<InterestId>(c);
      auto it = std::lower_bound(result.begin(), result.end(), id);
      if (it == result.end() || *it != id) result.insert(it, id);
    }
  }
  return result;
}

void InterestProfiles::clear_requests(NodeId node) {
  check_node(node);
  if (request_totals_[node] == 0.0) return;
  double* counts = request_counts_.data() + node * categories_;
  std::fill(counts, counts + categories_, 0.0);
  request_totals_[node] = 0.0;
  bump(node);
}

double InterestProfiles::similarity(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  const Row va = row(a);
  const Row vb = row(b);
  if (va.size == 0 || vb.size == 0) return 0.0;
  std::size_t overlap = 0;
  const InterestId* ia = va.ids;
  const InterestId* ea = va.ids + va.size;
  const InterestId* ib = vb.ids;
  const InterestId* eb = vb.ids + vb.size;
  while (ia != ea && ib != eb) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++overlap;
      ++ia;
      ++ib;
    }
  }
  return static_cast<double>(overlap) /
         static_cast<double>(std::min(va.size, vb.size));
}

double InterestProfiles::weighted_similarity(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  std::vector<InterestId> va = effective(a);
  std::vector<InterestId> vb = effective(b);
  if (va.empty() || vb.empty()) return 0.0;
  double sum = 0.0;
  auto ia = va.begin();
  auto ib = vb.begin();
  while (ia != va.end() && ib != vb.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      sum += std::min(request_weight(a, *ia), request_weight(b, *ib));
      ++ia;
      ++ib;
    }
  }
  return sum;
}

double InterestProfiles::weighted_similarity_eq11(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  std::vector<InterestId> va = effective(a);
  std::vector<InterestId> vb = effective(b);
  if (va.empty() || vb.empty()) return 0.0;
  double sum = 0.0;
  auto ia = va.begin();
  auto ib = vb.begin();
  while (ia != va.end() && ib != vb.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      sum += request_weight(a, *ia) * request_weight(b, *ib);
      ++ia;
      ++ib;
    }
  }
  // Eq. (11) keeps Eq. (7)'s denominator; the numerator swaps set
  // membership for behavioural weight products.
  return sum / static_cast<double>(std::min(va.size(), vb.size()));
}

}  // namespace st::core
