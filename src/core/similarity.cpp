#include "core/similarity.hpp"

#include <algorithm>
#include <stdexcept>

namespace st::core {

InterestProfiles::InterestProfiles(std::size_t node_count,
                                   std::size_t category_count)
    : categories_(category_count),
      declared_(node_count),
      request_counts_(node_count, std::vector<double>(category_count, 0.0)),
      request_totals_(node_count, 0.0),
      revisions_(node_count, 0) {
  if (category_count == 0)
    throw std::invalid_argument("InterestProfiles: need >= 1 category");
}

void InterestProfiles::check_node(NodeId node) const {
  if (node >= declared_.size())
    throw std::out_of_range("InterestProfiles: node out of range");
}

void InterestProfiles::bump(NodeId node) {
  ++revisions_[node];
  ++epoch_;
}

void InterestProfiles::set_interests(NodeId node,
                                     std::span<const InterestId> interests) {
  check_node(node);
  std::vector<InterestId> next;
  for (InterestId id : interests) {
    if (id < categories_) next.push_back(id);
  }
  std::sort(next.begin(), next.end());
  next.erase(std::unique(next.begin(), next.end()), next.end());
  if (next != declared_[node]) {
    declared_[node] = std::move(next);
    bump(node);
  }
}

void InterestProfiles::add_interest(NodeId node, InterestId interest) {
  check_node(node);
  if (interest >= categories_) return;
  auto& set = declared_[node];
  auto it = std::lower_bound(set.begin(), set.end(), interest);
  if (it == set.end() || *it != interest) {
    set.insert(it, interest);
    bump(node);
  }
}

void InterestProfiles::remove_interest(NodeId node, InterestId interest) {
  check_node(node);
  auto& set = declared_[node];
  auto it = std::lower_bound(set.begin(), set.end(), interest);
  if (it != set.end() && *it == interest) {
    set.erase(it);
    bump(node);
  }
}

std::span<const InterestId> InterestProfiles::declared(NodeId node) const {
  check_node(node);
  return declared_[node];
}

void InterestProfiles::record_request(NodeId node, InterestId category,
                                      double count) {
  check_node(node);
  if (category >= categories_ || count <= 0.0) return;
  request_counts_[node][category] += count;
  request_totals_[node] += count;
  bump(node);
}

double InterestProfiles::request_weight(NodeId node,
                                        InterestId category) const {
  check_node(node);
  if (category >= categories_ || request_totals_[node] <= 0.0) return 0.0;
  return request_counts_[node][category] / request_totals_[node];
}

double InterestProfiles::total_requests(NodeId node) const {
  check_node(node);
  return request_totals_[node];
}

std::vector<InterestId> InterestProfiles::effective(NodeId node) const {
  check_node(node);
  std::vector<InterestId> result = declared_[node];
  for (std::size_t c = 0; c < categories_; ++c) {
    if (request_counts_[node][c] > 0.0) {
      auto id = static_cast<InterestId>(c);
      auto it = std::lower_bound(result.begin(), result.end(), id);
      if (it == result.end() || *it != id) result.insert(it, id);
    }
  }
  return result;
}

void InterestProfiles::clear_requests(NodeId node) {
  check_node(node);
  if (request_totals_[node] == 0.0) return;
  std::fill(request_counts_[node].begin(), request_counts_[node].end(), 0.0);
  request_totals_[node] = 0.0;
  bump(node);
}

double InterestProfiles::similarity(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  const auto& va = declared_[a];
  const auto& vb = declared_[b];
  if (va.empty() || vb.empty()) return 0.0;
  std::size_t overlap = 0;
  auto ia = va.begin();
  auto ib = vb.begin();
  while (ia != va.end() && ib != vb.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++overlap;
      ++ia;
      ++ib;
    }
  }
  return static_cast<double>(overlap) /
         static_cast<double>(std::min(va.size(), vb.size()));
}

double InterestProfiles::weighted_similarity(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  std::vector<InterestId> va = effective(a);
  std::vector<InterestId> vb = effective(b);
  if (va.empty() || vb.empty()) return 0.0;
  double sum = 0.0;
  auto ia = va.begin();
  auto ib = vb.begin();
  while (ia != va.end() && ib != vb.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      sum += std::min(request_weight(a, *ia), request_weight(b, *ib));
      ++ia;
      ++ib;
    }
  }
  return sum;
}

double InterestProfiles::weighted_similarity_eq11(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  std::vector<InterestId> va = effective(a);
  std::vector<InterestId> vb = effective(b);
  if (va.empty() || vb.empty()) return 0.0;
  double sum = 0.0;
  auto ia = va.begin();
  auto ib = vb.begin();
  while (ia != va.end() && ib != vb.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      sum += request_weight(a, *ia) * request_weight(b, *ib);
      ++ia;
      ++ib;
    }
  }
  // Eq. (11) keeps Eq. (7)'s denominator; the numerator swaps set
  // membership for behavioural weight products.
  return sum / static_cast<double>(std::min(va.size(), vb.size()));
}

}  // namespace st::core
