#pragma once
// Social closeness Omega_c — Eqs. (2), (3), (4) and the hardened Eq. (10).
//
// For adjacent nodes:
//     Omega_c(i,j) = m(i,j) * f(i,j) / sum_k f(i,k)            (Eq. 2)
// or, with typed relationship weights sorted descending and decayed by
// lambda^(l-1):
//     Omega_c(i,j) = (sum_l lambda^(l-1) w_dl) * f(i,j) / sum_k f(i,k)
//                                                              (Eq. 10)
// For non-adjacent nodes with common friends k:
//     Omega_c(i,j) = sum_k (Omega_c(i,k) + Omega_c(k,j)) / 2   (Eq. 3)
// For non-adjacent nodes without common friends: the minimum adjacent
// closeness along one shortest social path (bottleneck closeness, Eq. 4).
// Unreachable pairs have closeness 0.

#include <cstdint>
#include <functional>
#include <span>

#include "core/config.hpp"
#include "graph/social_graph.hpp"

namespace st::core {

/// Computes Omega_c over a SocialGraph. Stateless beyond its configuration;
/// all social data lives in the graph.
///
/// Thread safety: every method is a pure read of the model's immutable
/// configuration and of the (caller-owned) graph, so concurrent closeness()
/// calls are safe as long as nobody mutates the graph underneath them —
/// the contract the parallel update interval relies on. The weight_fn must
/// itself be safe to invoke concurrently (the default is).
class ClosenessModel {
 public:
  using RelationshipWeightFn = std::function<double(graph::Relationship)>;

  /// `weighted` selects Eq. (10) vs Eq. (2) for the adjacent case;
  /// `lambda` is the relationship decay of Eq. (10); `weight_fn` maps
  /// relationship types to weights (defaults to
  /// graph::default_relationship_weight).
  explicit ClosenessModel(bool weighted = true, double lambda = 0.8,
                          RelationshipWeightFn weight_fn = {});

  /// Full Omega_c(i,j) with the non-adjacent fallbacks. `max_hops` caps
  /// the shortest-path search of the bottleneck case.
  double closeness(const graph::SocialGraph& g, graph::NodeId i,
                   graph::NodeId j, std::size_t max_hops = 6) const;

  /// Adjacent-only Omega_c (Eq. 2 / Eq. 10); 0 when not adjacent or when
  /// i has no recorded interactions.
  double adjacent_closeness(const graph::SocialGraph& g, graph::NodeId i,
                            graph::NodeId j) const;

  /// Eq. (3) given the common-friend set of (i, j): the friend-of-friend
  /// sum over `common`, exactly as the non-adjacent branch of closeness()
  /// evaluates it. Exposed so a caller holding a memoised common set (the
  /// incremental SocialStateCache) reproduces closeness() bit-for-bit.
  double fof_closeness(const graph::SocialGraph& g, graph::NodeId i,
                       graph::NodeId j,
                       std::span<const graph::NodeId> common) const;

  /// Eq. (4) given one shortest path i -> ... -> j (inclusive): the
  /// minimum adjacent closeness along its edges; 0 for paths shorter than
  /// one edge. Same bit-identity contract as fof_closeness().
  double bottleneck_closeness(const graph::SocialGraph& g,
                              std::span<const graph::NodeId> path) const;

  bool weighted() const noexcept { return weighted_; }
  double lambda() const noexcept { return lambda_; }

 private:
  /// Eq. (10)'s decayed relationship-weight sum, or plain m(i,j) for the
  /// unweighted variant.
  double relationship_mass(const graph::SocialGraph& g, graph::NodeId i,
                           graph::NodeId j) const;

  /// Eq. (10)/(2) mass for one relationship bitmask (see
  /// SocialGraph::relationship_mask). Evaluated by the same sort-and-decay
  /// code for every mask at construction, then served from mass_table_ —
  /// adjacent_closeness sits in the innermost friend-of-friend loop, and
  /// the mass depends on nothing but the (at most 2^6-state) type set.
  double mass_of_mask(std::uint8_t mask) const;

  bool weighted_;
  double lambda_;
  RelationshipWeightFn weight_fn_;
  double mass_table_[1U << graph::kRelationshipCount];
};

}  // namespace st::core
