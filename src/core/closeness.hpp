#pragma once
// Social closeness Omega_c — Eqs. (2), (3), (4) and the hardened Eq. (10).
//
// For adjacent nodes:
//     Omega_c(i,j) = m(i,j) * f(i,j) / sum_k f(i,k)            (Eq. 2)
// or, with typed relationship weights sorted descending and decayed by
// lambda^(l-1):
//     Omega_c(i,j) = (sum_l lambda^(l-1) w_dl) * f(i,j) / sum_k f(i,k)
//                                                              (Eq. 10)
// For non-adjacent nodes with common friends k:
//     Omega_c(i,j) = sum_k (Omega_c(i,k) + Omega_c(k,j)) / 2   (Eq. 3)
// For non-adjacent nodes without common friends: the minimum adjacent
// closeness along one shortest social path (bottleneck closeness, Eq. 4).
// Unreachable pairs have closeness 0.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/config.hpp"
#include "graph/social_graph.hpp"

namespace st::core {

/// Computes Omega_c over a SocialGraph. Stateless beyond its configuration;
/// all social data lives in the graph.
///
/// Thread safety: every method is a pure read of the model's immutable
/// configuration and of the (caller-owned) graph, so concurrent closeness()
/// calls are safe as long as nobody mutates the graph underneath them —
/// the contract the parallel update interval relies on. The weight_fn must
/// itself be safe to invoke concurrently (the default is).
class ClosenessModel {
 public:
  using RelationshipWeightFn = std::function<double(graph::Relationship)>;

  /// `weighted` selects Eq. (10) vs Eq. (2) for the adjacent case;
  /// `lambda` is the relationship decay of Eq. (10); `weight_fn` maps
  /// relationship types to weights (defaults to
  /// graph::default_relationship_weight).
  explicit ClosenessModel(bool weighted = true, double lambda = 0.8,
                          RelationshipWeightFn weight_fn = {});

  /// Full Omega_c(i,j) with the non-adjacent fallbacks. `max_hops` caps
  /// the shortest-path search of the bottleneck case.
  double closeness(const graph::SocialGraph& g, graph::NodeId i,
                   graph::NodeId j, std::size_t max_hops = 6) const;

  /// Adjacent-only Omega_c (Eq. 2 / Eq. 10); 0 when not adjacent or when
  /// i has no recorded interactions.
  double adjacent_closeness(const graph::SocialGraph& g, graph::NodeId i,
                            graph::NodeId j) const;

  bool weighted() const noexcept { return weighted_; }
  double lambda() const noexcept { return lambda_; }

 private:
  /// Eq. (10)'s decayed relationship-weight sum, or plain m(i,j) for the
  /// unweighted variant.
  double relationship_mass(const graph::SocialGraph& g, graph::NodeId i,
                           graph::NodeId j) const;

  bool weighted_;
  double lambda_;
  RelationshipWeightFn weight_fn_;
};

/// Mutex-striped memo table for pairwise closeness values.
///
/// Omega_c(i,j) is expensive (BFS / friend-of-friend sums) and the update
/// interval evaluates each active pair several times (system baseline,
/// per-rater aggregates, detect-and-adjust), so the plugin memoises it.
/// With the interval fanned across a thread pool the memo table becomes
/// shared mutable state; a single map under one mutex would serialise the
/// hot path again. Instead the key space is sharded over kShards
/// independently-locked maps, so concurrent lookups of different pairs
/// almost never contend.
///
/// Determinism: closeness is a pure function of (graph, i, j), so when two
/// threads race on the same absent key both compute the same value and the
/// duplicate insert is a no-op — cache contents never depend on thread
/// interleaving. The value is computed outside the shard lock to keep BFS
/// work out of critical sections.
class ShardedClosenessCache {
 public:
  ShardedClosenessCache();

  /// Cached Omega_c(i,j), computing and memoising on miss.
  double get_or_compute(const ClosenessModel& model,
                        const graph::SocialGraph& g, graph::NodeId i,
                        graph::NodeId j);

  /// Drops every entry (start of a new update interval: interaction
  /// frequencies have changed, so cached values are stale).
  void clear();

  /// Total entries across shards (diagnostics/tests only; takes all locks).
  std::size_t size() const;

  static constexpr std::size_t kShards = 64;  // power of two

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, double> values;
  };

  static std::size_t shard_of(std::uint64_t key) noexcept {
    // Multiplicative mix so raters hashing to consecutive ids spread out.
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ULL) >> 32U) &
           (kShards - 1);
  }

  std::unique_ptr<Shard[]> shards_;
};

}  // namespace st::core
