#pragma once
// Social closeness Omega_c — Eqs. (2), (3), (4) and the hardened Eq. (10).
//
// For adjacent nodes:
//     Omega_c(i,j) = m(i,j) * f(i,j) / sum_k f(i,k)            (Eq. 2)
// or, with typed relationship weights sorted descending and decayed by
// lambda^(l-1):
//     Omega_c(i,j) = (sum_l lambda^(l-1) w_dl) * f(i,j) / sum_k f(i,k)
//                                                              (Eq. 10)
// For non-adjacent nodes with common friends k:
//     Omega_c(i,j) = sum_k (Omega_c(i,k) + Omega_c(k,j)) / 2   (Eq. 3)
// For non-adjacent nodes without common friends: the minimum adjacent
// closeness along one shortest social path (bottleneck closeness, Eq. 4).
// Unreachable pairs have closeness 0.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/config.hpp"
#include "graph/social_graph.hpp"
#include "obs/obs.hpp"

namespace st::core {

/// Computes Omega_c over a SocialGraph. Stateless beyond its configuration;
/// all social data lives in the graph.
///
/// Thread safety: every method is a pure read of the model's immutable
/// configuration and of the (caller-owned) graph, so concurrent closeness()
/// calls are safe as long as nobody mutates the graph underneath them —
/// the contract the parallel update interval relies on. The weight_fn must
/// itself be safe to invoke concurrently (the default is).
class ClosenessModel {
 public:
  using RelationshipWeightFn = std::function<double(graph::Relationship)>;

  /// `weighted` selects Eq. (10) vs Eq. (2) for the adjacent case;
  /// `lambda` is the relationship decay of Eq. (10); `weight_fn` maps
  /// relationship types to weights (defaults to
  /// graph::default_relationship_weight).
  explicit ClosenessModel(bool weighted = true, double lambda = 0.8,
                          RelationshipWeightFn weight_fn = {});

  /// Full Omega_c(i,j) with the non-adjacent fallbacks. `max_hops` caps
  /// the shortest-path search of the bottleneck case.
  double closeness(const graph::SocialGraph& g, graph::NodeId i,
                   graph::NodeId j, std::size_t max_hops = 6) const;

  /// Adjacent-only Omega_c (Eq. 2 / Eq. 10); 0 when not adjacent or when
  /// i has no recorded interactions.
  double adjacent_closeness(const graph::SocialGraph& g, graph::NodeId i,
                            graph::NodeId j) const;

  bool weighted() const noexcept { return weighted_; }
  double lambda() const noexcept { return lambda_; }

 private:
  /// Eq. (10)'s decayed relationship-weight sum, or plain m(i,j) for the
  /// unweighted variant.
  double relationship_mass(const graph::SocialGraph& g, graph::NodeId i,
                           graph::NodeId j) const;

  bool weighted_;
  double lambda_;
  RelationshipWeightFn weight_fn_;
};

/// Mutex-striped memo table for pairwise closeness values.
///
/// Omega_c(i,j) is expensive (BFS / friend-of-friend sums) and the update
/// interval evaluates each active pair several times (system baseline,
/// per-rater aggregates, detect-and-adjust), so the plugin memoises it.
/// With the interval fanned across a thread pool the memo table becomes
/// shared mutable state; a single map under one mutex would serialise the
/// hot path again. Instead the key space is sharded over kShards
/// independently-locked maps, so concurrent lookups of different pairs
/// almost never contend.
///
/// Determinism: closeness is a pure function of (graph, i, j), so when two
/// threads race on the same absent key both compute the same value and the
/// duplicate insert is a no-op — cache contents never depend on thread
/// interleaving. The value is computed outside the shard lock to keep BFS
/// work out of critical sections.
///
/// Observability: `closeness_cache.hits` / `.misses` / `.inserts` count
/// lookups served from a shard, lookups that had to compute, and computed
/// values actually inserted. `misses - inserts` is the number of duplicate
/// computes lost to the benign same-key race above — a direct measure of
/// how often threads collide on a pair (see docs/OBSERVABILITY.md).
class ShardedClosenessCache {
 public:
  ShardedClosenessCache();

  /// Cached Omega_c(i,j), computing and memoising on miss.
  double get_or_compute(const ClosenessModel& model,
                        const graph::SocialGraph& g, graph::NodeId i,
                        graph::NodeId j);

  /// Drops every entry (start of a new update interval: interaction
  /// frequencies have changed, so cached values are stale).
  void clear();

  /// Total entries across shards (diagnostics/tests only; takes all locks).
  std::size_t size() const;

  /// Shard count: a power of two (shard_of masks with kShards - 1) well
  /// above any realistic worker count, so even a fully loaded pool sees
  /// ~1/64 odds of two threads wanting the same shard lock at once.
  static constexpr std::size_t kShards = 64;

 private:
  /// One stripe: its own mutex plus the map slice of keys that hash here.
  /// Striping trades memory (64 small maps) for lock granularity — a
  /// contended lookup blocks only the 1/64th of the key space it shares a
  /// stripe with, not the whole memo table.
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, double> values;
  };

  /// Maps a packed (rater << 32 | ratee) key to its stripe. The
  /// Fibonacci-hash multiplier (2^64 / phi) mixes the low bits into the
  /// high word before the mask, so raters with consecutive ids — the
  /// common case, since the pair list is sorted by rater — spread across
  /// shards instead of hammering one.
  static std::size_t shard_of(std::uint64_t key) noexcept {
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ULL) >> 32U) &
           (kShards - 1);
  }

  std::unique_ptr<Shard[]> shards_;

  // Observability handles (see class comment); resolved once at
  // construction, no-ops while the obs layer is disabled.
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* inserts_ = nullptr;
};

}  // namespace st::core
