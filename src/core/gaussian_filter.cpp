#include "core/gaussian_filter.hpp"

#include <algorithm>
#include <cmath>

namespace st::core {

namespace {

/// Squared, width-normalised deviation (x - b)^2 / (2 c^2); the exponent
/// contribution of one coefficient.
double exponent_term(double x, const CoefficientStats& stats,
                     GaussianWidth mode) noexcept {
  double dev = x - stats.mean;
  if (dev == 0.0) return 0.0;
  double c = stats.width(mode);
  if (c <= 0.0) {
    // Degenerate width: treat the deviation itself as the width, which
    // yields the constant exponent 1/2 — a mild, well-defined attenuation
    // instead of a division by zero.
    return 0.5;
  }
  return (dev * dev) / (2.0 * c * c);
}

}  // namespace

double gaussian_weight(double x, const CoefficientStats& stats, double alpha,
                       GaussianWidth mode) noexcept {
  return alpha * std::exp(-exponent_term(x, stats, mode));
}

double gaussian_weight2(double closeness, const CoefficientStats& c_stats,
                        double similarity, const CoefficientStats& s_stats,
                        double alpha, GaussianWidth mode) noexcept {
  return alpha * std::exp(-(exponent_term(closeness, c_stats, mode) +
                            exponent_term(similarity, s_stats, mode)));
}

double adjustment_weight(AdjustmentComponents components, double closeness,
                         const CoefficientStats& c_stats, double similarity,
                         const CoefficientStats& s_stats, double alpha,
                         GaussianWidth mode) noexcept {
  switch (components) {
    case AdjustmentComponents::kClosenessOnly:
      return gaussian_weight(closeness, c_stats, alpha, mode);
    case AdjustmentComponents::kSimilarityOnly:
      return gaussian_weight(similarity, s_stats, alpha, mode);
    case AdjustmentComponents::kCombined:
      return gaussian_weight2(closeness, c_stats, similarity, s_stats, alpha,
                              mode);
  }
  return alpha;
}

double population_stddev(double sum, double sum_sq, std::size_t n) noexcept {
  if (n == 0) return 0.0;
  double mean = sum / static_cast<double>(n);
  double var = sum_sq / static_cast<double>(n) - mean * mean;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

CoefficientStats robust_stats(std::vector<double>& values) {
  CoefficientStats out;
  if (values.empty()) return out;
  auto median_of = [](std::vector<double>& v) {
    std::size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + static_cast<long>(mid), v.end());
    double m = v[mid];
    if (v.size() % 2 == 0) {
      double lower =
          *std::max_element(v.begin(), v.begin() + static_cast<long>(mid));
      m = (m + lower) / 2.0;
    }
    return m;
  };
  out.min = *std::min_element(values.begin(), values.end());
  out.max = *std::max_element(values.begin(), values.end());
  double med = median_of(values);
  out.mean = med;
  std::vector<double> deviations(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    deviations[i] = std::fabs(values[i] - med);
  double mad = median_of(deviations);
  if (mad > 0.0) {
    out.stddev = 1.4826 * mad;
  } else {
    double sum = 0.0, sum_sq = 0.0;
    for (double v : values) {
      sum += v;
      sum_sq += v * v;
    }
    out.stddev = population_stddev(sum, sum_sq, values.size());
  }
  return out;
}

}  // namespace st::core
