#include "core/gaussian_filter.hpp"

#include <cmath>

namespace st::core {

namespace {

/// Squared, width-normalised deviation (x - b)^2 / (2 c^2); the exponent
/// contribution of one coefficient.
double exponent_term(double x, const CoefficientStats& stats,
                     GaussianWidth mode) noexcept {
  double dev = x - stats.mean;
  if (dev == 0.0) return 0.0;
  double c = stats.width(mode);
  if (c <= 0.0) {
    // Degenerate width: treat the deviation itself as the width, which
    // yields the constant exponent 1/2 — a mild, well-defined attenuation
    // instead of a division by zero.
    return 0.5;
  }
  return (dev * dev) / (2.0 * c * c);
}

}  // namespace

double gaussian_weight(double x, const CoefficientStats& stats, double alpha,
                       GaussianWidth mode) noexcept {
  return alpha * std::exp(-exponent_term(x, stats, mode));
}

double gaussian_weight2(double closeness, const CoefficientStats& c_stats,
                        double similarity, const CoefficientStats& s_stats,
                        double alpha, GaussianWidth mode) noexcept {
  return alpha * std::exp(-(exponent_term(closeness, c_stats, mode) +
                            exponent_term(similarity, s_stats, mode)));
}

double adjustment_weight(AdjustmentComponents components, double closeness,
                         const CoefficientStats& c_stats, double similarity,
                         const CoefficientStats& s_stats, double alpha,
                         GaussianWidth mode) noexcept {
  switch (components) {
    case AdjustmentComponents::kClosenessOnly:
      return gaussian_weight(closeness, c_stats, alpha, mode);
    case AdjustmentComponents::kSimilarityOnly:
      return gaussian_weight(similarity, s_stats, alpha, mode);
    case AdjustmentComponents::kCombined:
      return gaussian_weight2(closeness, c_stats, similarity, s_stats, alpha,
                              mode);
  }
  return alpha;
}

}  // namespace st::core
