#pragma once
// The Gaussian reputation filter of Eqs. (5), (6), (8), (9).
//
// A rating r(i,j) is rescaled by
//     w = alpha * exp( -(x - b)^2 / (2 c^2) )
// where x is the rater's closeness/similarity to the ratee, b the rater's
// "normal" value of that coefficient over the *other* nodes it has rated,
// and c a width statistic of the same population (range per the literal
// Eq. 6, standard deviation by default — see GaussianWidth in config.hpp).
// Ratings between pairs whose coefficients sit far from the rater's norm
// are exponentially attenuated; pairs near the norm keep (almost) full
// weight.

#include <vector>

#include "core/config.hpp"

namespace st::core {

/// Centre/width statistics of one coefficient for one rater (or the whole
/// system, depending on BaselineSource).
struct CoefficientStats {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;

  /// The Gaussian width c under the chosen mode.
  double width(GaussianWidth mode) const noexcept {
    if (mode == GaussianWidth::kStdDev) return stddev;
    return max > min ? max - min : min - max;
  }
};

/// One-dimensional weight of Eq. (6)/(8): alpha * exp(-(x-b)^2 / (2 c^2)).
/// A degenerate width (c == 0, e.g. a rater who has rated only one other
/// node) yields weight alpha when x == mean and alpha * exp(-1/2)
/// otherwise — the limit of treating the unknown width as |x - mean|.
double gaussian_weight(double x, const CoefficientStats& stats, double alpha,
                       GaussianWidth mode = GaussianWidth::kStdDev) noexcept;

/// Two-dimensional weight of Eq. (9): the exponents of both coefficients
/// add inside a single exponential.
double gaussian_weight2(double closeness, const CoefficientStats& c_stats,
                        double similarity, const CoefficientStats& s_stats,
                        double alpha,
                        GaussianWidth mode = GaussianWidth::kStdDev) noexcept;

/// Dispatches on the configured components: Eq. (6), Eq. (8) or Eq. (9).
double adjustment_weight(AdjustmentComponents components, double closeness,
                         const CoefficientStats& c_stats, double similarity,
                         const CoefficientStats& s_stats, double alpha,
                         GaussianWidth mode = GaussianWidth::kStdDev) noexcept;

/// Population standard deviation from running sums (sum, sum of squares,
/// count); 0 for an empty or degenerate population.
double population_stddev(double sum, double sum_sq, std::size_t n) noexcept;

/// Median/MAD-based CoefficientStats — the system-wide baseline of the
/// detect-and-adjust pass. `values` is consumed (permuted in place by the
/// nth_element selections). The width is the normal-consistent
/// 1.4826 * MAD; when the MAD degenerates to zero (over half the values
/// identical) it falls back to the population stddev so genuinely spread
/// data still gets a width. Shared by the centralized pipeline and the
/// sharded aggregator's exact merge path: both must call this exact
/// function on an identically ordered input vector to stay bit-identical
/// (the stddev fallback sums in input order).
CoefficientStats robust_stats(std::vector<double>& values);

}  // namespace st::core
