#include "core/detector.hpp"

#include <algorithm>

namespace st::core {

BehaviorDetector::BehaviorDetector(const SocialTrustConfig& config) noexcept
    : config_(config) {
  auto& registry = obs::Obs::instance().registry();
  pairs_checked_ = &registry.counter("detector.pairs_checked");
  b1_flags_ = &registry.counter("detector.b1_flags");
  b2_flags_ = &registry.counter("detector.b2_flags");
  b3_flags_ = &registry.counter("detector.b3_flags");
  b4_flags_ = &registry.counter("detector.b4_flags");
}

double BehaviorDetector::positive_threshold(
    double average_pair_frequency) const noexcept {
  return std::max(config_.positive_count_floor,
                  config_.theta * average_pair_frequency);
}

double BehaviorDetector::negative_threshold(
    double average_pair_frequency) const noexcept {
  return std::max(config_.negative_count_floor,
                  config_.theta * average_pair_frequency);
}

Behavior BehaviorDetector::classify(
    const PairEvidence& e, double average_pair_frequency) const noexcept {
  Behavior result = Behavior::kNone;

  // Adaptive closeness cut points: closeness is not normalised across
  // raters, so "very high"/"very low" is judged relative to the rater's
  // own average closeness to the nodes it rates.
  const double mean_c = e.rater_closeness.mean;
  const double high_c = mean_c * config_.closeness_high_factor;
  const double low_c = mean_c * config_.closeness_low_factor;

  if (e.positive_count > positive_threshold(average_pair_frequency)) {
    // B1: frequent positive ratings across a weak social tie.
    if (e.closeness < low_c) result = result | Behavior::kB1;
    // B2: frequent positive ratings toward a low-reputed, very close node.
    if (e.closeness > high_c && e.ratee_reputation < config_.low_reputation)
      result = result | Behavior::kB2;
    // B3: frequent positive ratings despite few shared interests.
    if (e.similarity < config_.similarity_low) result = result | Behavior::kB3;
  }

  if (e.negative_count > negative_threshold(average_pair_frequency)) {
    // B4: frequent negative ratings despite many shared interests —
    // the competitor-suppression pattern.
    if (e.similarity > config_.similarity_high)
      result = result | Behavior::kB4;
  }

  pairs_checked_->add(1);
  if (any(result & Behavior::kB1)) b1_flags_->add(1);
  if (any(result & Behavior::kB2)) b2_flags_->add(1);
  if (any(result & Behavior::kB3)) b3_flags_->add(1);
  if (any(result & Behavior::kB4)) b4_flags_->add(1);
  return result;
}

}  // namespace st::core
