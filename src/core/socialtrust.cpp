#include "core/socialtrust.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace st::core {

using reputation::NodeId;
using reputation::PairKey;
using reputation::Rating;

SocialTrustPlugin::SocialTrustPlugin(
    std::unique_ptr<reputation::ReputationSystem> inner,
    const graph::SocialGraph& graph, const InterestProfiles& profiles,
    SocialTrustConfig config)
    : inner_(std::move(inner)),
      graph_(graph),
      profiles_(profiles),
      config_(config),
      closeness_model_(config.weighted_relationships, config.lambda),
      detector_(config) {
  if (!inner_) throw std::invalid_argument("SocialTrustPlugin: null inner");
  if (graph_.size() < inner_->size() ||
      profiles_.node_count() < inner_->size()) {
    throw std::invalid_argument(
        "SocialTrustPlugin: graph/profiles smaller than reputation domain");
  }
  name_ = std::string(inner_->name()) + "+SocialTrust";
  rated_history_.resize(inner_->size());
}

// --- LooAggregate -----------------------------------------------------------

void SocialTrustPlugin::LooAggregate::add(double v) noexcept {
  if (n == 0) {
    min1 = min2 = max1 = max2 = v;
  } else {
    if (v < min1) {
      min2 = min1;
      min1 = v;
    } else if (n == 1 || v < min2) {
      min2 = v;
    }
    if (v > max1) {
      max2 = max1;
      max1 = v;
    } else if (n == 1 || v > max2) {
      max2 = v;
    }
  }
  sum += v;
  sum_sq += v * v;
  ++n;
}

namespace {
double population_stddev(double sum, double sum_sq, std::size_t n) noexcept {
  if (n == 0) return 0.0;
  double mean = sum / static_cast<double>(n);
  double var = sum_sq / static_cast<double>(n) - mean * mean;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}
}  // namespace

bool SocialTrustPlugin::LooAggregate::without(
    double v, CoefficientStats& out) const noexcept {
  if (n <= 1) return false;
  out.mean = (sum - v) / static_cast<double>(n - 1);
  out.min = (v == min1) ? min2 : min1;
  out.max = (v == max1) ? max2 : max1;
  out.stddev = population_stddev(sum - v, sum_sq - v * v, n - 1);
  return true;
}

CoefficientStats SocialTrustPlugin::LooAggregate::full() const noexcept {
  CoefficientStats out;
  if (n == 0) return out;
  out.mean = sum / static_cast<double>(n);
  out.min = min1;
  out.max = max1;
  out.stddev = population_stddev(sum, sum_sq, n);
  return out;
}

// --- helpers ----------------------------------------------------------------

namespace {

/// Median/MAD-based CoefficientStats. `values` is consumed (sorted in
/// place). The width is the normal-consistent 1.4826 * MAD; when the MAD
/// degenerates to zero (over half the values identical) it falls back to
/// the population stddev so genuinely spread data still gets a width.
CoefficientStats robust_stats(std::vector<double>& values) {
  CoefficientStats out;
  if (values.empty()) return out;
  auto median_of = [](std::vector<double>& v) {
    std::size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + static_cast<long>(mid), v.end());
    double m = v[mid];
    if (v.size() % 2 == 0) {
      double lower =
          *std::max_element(v.begin(), v.begin() + static_cast<long>(mid));
      m = (m + lower) / 2.0;
    }
    return m;
  };
  out.min = *std::min_element(values.begin(), values.end());
  out.max = *std::max_element(values.begin(), values.end());
  double med = median_of(values);
  out.mean = med;
  std::vector<double> deviations(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    deviations[i] = std::fabs(values[i] - med);
  double mad = median_of(deviations);
  if (mad > 0.0) {
    out.stddev = 1.4826 * mad;
  } else {
    double sum = 0.0, sum_sq = 0.0;
    for (double v : values) {
      sum += v;
      sum_sq += v * v;
    }
    double mean = sum / static_cast<double>(values.size());
    double var = sum_sq / static_cast<double>(values.size()) - mean * mean;
    out.stddev = var > 0.0 ? std::sqrt(var) : 0.0;
  }
  return out;
}

}  // namespace

double SocialTrustPlugin::closeness_cached(NodeId i, NodeId j) {
  std::uint64_t key = (static_cast<std::uint64_t>(i) << 32U) | j;
  auto it = closeness_cache_.find(key);
  if (it != closeness_cache_.end()) return it->second;
  double value = closeness_model_.closeness(graph_, i, j);
  closeness_cache_.emplace(key, value);
  return value;
}

double SocialTrustPlugin::similarity_of(NodeId i, NodeId j) const {
  return config_.weighted_interests ? profiles_.weighted_similarity(i, j)
                                    : profiles_.similarity(i, j);
}

SocialTrustPlugin::LooAggregate SocialTrustPlugin::aggregate_over(
    NodeId rater, const std::vector<NodeId>& ratees, bool closeness) {
  LooAggregate agg;
  for (NodeId j : ratees) {
    agg.add(closeness ? closeness_cached(rater, j) : similarity_of(rater, j));
  }
  return agg;
}

// --- update -----------------------------------------------------------------

void SocialTrustPlugin::update(std::span<const Rating> cycle_ratings) {
  closeness_cache_.clear();
  adjusted_.assign(cycle_ratings.begin(), cycle_ratings.end());
  report_ = AdjustmentReport{};

  // 1. Tally pairs and extend per-rater rating history.
  PairMap pairs;
  for (std::size_t idx = 0; idx < adjusted_.size(); ++idx) {
    const Rating& r = adjusted_[idx];
    if (r.rater >= inner_->size() || r.ratee >= inner_->size() ||
        r.rater == r.ratee) {
      continue;
    }
    PairTally& tally = pairs[PairKey{r.rater, r.ratee}];
    if (r.value > 0.0) {
      tally.positive += 1.0;
    } else if (r.value < 0.0) {
      tally.negative += 1.0;
    }
    tally.rating_indices.push_back(idx);

    auto& hist = rated_history_[r.rater];
    auto it = std::lower_bound(hist.begin(), hist.end(), r.ratee);
    if (it == hist.end() || *it != r.ratee) hist.insert(it, r.ratee);
  }
  report_.pairs_total = pairs.size();

  // 2. System-average per-pair frequency F for this interval.
  double total_count = 0.0;
  for (const auto& [key, tally] : pairs)
    total_count += tally.positive + tally.negative;
  double avg_freq =
      pairs.empty() ? 0.0 : total_count / static_cast<double>(pairs.size());

  // 3. Gaussian baseline statistics.
  // System-wide aggregates over this interval's active pairs serve either
  // as the primary baseline (BaselineSource::kSystemWide — the paper's
  // "empirical" alternative), as the hybrid's second opinion, or as the
  // fallback when a rater's leave-one-out set is empty. They use robust
  // statistics (median centre, MAD-derived width): colluding pairs can be
  // a sizeable fraction of the interval's pairs, and with mean/stddev the
  // attack would inflate the baseline spread enough to exonerate itself.
  std::vector<double> sys_c_values, sys_s_values;
  sys_c_values.reserve(pairs.size());
  sys_s_values.reserve(pairs.size());
  for (const auto& [key, tally] : pairs) {
    sys_c_values.push_back(closeness_cached(key.rater, key.ratee));
    sys_s_values.push_back(similarity_of(key.rater, key.ratee));
  }
  const CoefficientStats system_c = robust_stats(sys_c_values);
  const CoefficientStats system_s = robust_stats(sys_s_values);

  // Per-rater aggregates over each rater's cumulative rated set.
  const bool use_per_rater = config_.baseline != BaselineSource::kSystemWide;
  std::unordered_map<NodeId, LooAggregate> rater_c_agg, rater_s_agg;
  if (use_per_rater) {
    for (const auto& [key, tally] : pairs) {
      if (rater_c_agg.count(key.rater)) continue;
      rater_c_agg.emplace(
          key.rater, aggregate_over(key.rater, rated_history_[key.rater],
                                    /*closeness=*/true));
      rater_s_agg.emplace(
          key.rater, aggregate_over(key.rater, rated_history_[key.rater],
                                    /*closeness=*/false));
    }
  }

  // 4. Detect and adjust.
  double weight_sum = 0.0;
  for (const auto& [key, tally] : pairs) {
    const double pair_c = closeness_cached(key.rater, key.ratee);
    const double pair_s = similarity_of(key.rater, key.ratee);

    // Leave-one-out per-rater stats (Section 4.1's "other nodes it has
    // rated"), falling back to the system-wide empirical baseline.
    CoefficientStats c_stats = system_c;
    CoefficientStats s_stats = system_s;
    if (use_per_rater) {
      rater_c_agg[key.rater].without(pair_c, c_stats);
      rater_s_agg[key.rater].without(pair_s, s_stats);
    }

    PairEvidence evidence;
    evidence.positive_count = tally.positive;
    evidence.negative_count = tally.negative;
    evidence.closeness = pair_c;
    evidence.similarity = pair_s;
    evidence.ratee_reputation = inner_->reputation(key.ratee);
    evidence.rater_closeness = c_stats;

    Behavior behavior = detector_.classify(evidence, avg_freq);
    if (any(behavior & Behavior::kB1)) ++report_.b1;
    if (any(behavior & Behavior::kB2)) ++report_.b2;
    if (any(behavior & Behavior::kB3)) ++report_.b3;
    if (any(behavior & Behavior::kB4)) ++report_.b4;

    bool adjust = config_.gate_on_detector ? any(behavior) : true;
    if (!adjust) continue;
    if (any(behavior)) ++report_.pairs_flagged;

    double weight =
        adjustment_weight(config_.components, pair_c, c_stats, pair_s,
                          s_stats, config_.alpha, config_.width);
    if (config_.baseline == BaselineSource::kHybrid) {
      // Hybrid: also evaluate against the system-wide baseline and keep
      // the stronger attenuation — robust to per-rater baselines that a
      // multi-conspirator colluder has poisoned with its own pairs.
      weight = std::min(
          weight, adjustment_weight(config_.components, pair_c, system_c,
                                    pair_s, system_s, config_.alpha,
                                    config_.width));
    }
    if (any(behavior)) {
      report_.flagged.push_back(
          FlaggedPair{key.rater, key.ratee, behavior, weight});
    }
    for (std::size_t idx : tally.rating_indices) {
      adjusted_[idx].value *= weight;
      ++report_.ratings_adjusted;
      weight_sum += weight;
    }
  }
  report_.mean_weight = report_.ratings_adjusted > 0
                            ? weight_sum /
                                  static_cast<double>(report_.ratings_adjusted)
                            : 1.0;

  // 5. Feed the adjusted stream to the wrapped system.
  inner_->update(adjusted_);
}

void SocialTrustPlugin::forget_node(NodeId node) {
  inner_->forget_node(node);
  if (node < rated_history_.size()) rated_history_[node].clear();
  // The discarded identity also disappears from other raters' histories.
  for (auto& hist : rated_history_) {
    auto it = std::lower_bound(hist.begin(), hist.end(), node);
    if (it != hist.end() && *it == node) hist.erase(it);
  }
}

void SocialTrustPlugin::reset() {
  inner_->reset();
  for (auto& hist : rated_history_) hist.clear();
  closeness_cache_.clear();
  adjusted_.clear();
  report_ = AdjustmentReport{};
}

}  // namespace st::core
