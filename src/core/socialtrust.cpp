#include "core/socialtrust.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>

#include "shard/sharded_aggregator.hpp"

namespace st::core {

using reputation::NodeId;
using reputation::PairKey;
using reputation::Rating;

SocialTrustPlugin::SocialTrustPlugin(
    std::unique_ptr<reputation::ReputationSystem> inner,
    const graph::SocialGraph& graph, const InterestProfiles& profiles,
    SocialTrustConfig config)
    : inner_(std::move(inner)),
      graph_(graph),
      profiles_(profiles),
      config_(config),
      closeness_model_(config.weighted_relationships, config.lambda),
      detector_(config) {
  if (!inner_) throw std::invalid_argument("SocialTrustPlugin: null inner");
  if (graph_.size() < inner_->size() ||
      profiles_.node_count() < inner_->size()) {
    throw std::invalid_argument(
        "SocialTrustPlugin: graph/profiles smaller than reputation domain");
  }
  name_ = std::string(inner_->name()) + "+SocialTrust";
  rated_history_.resize(inner_->size());
  if (config_.schedule == UpdateSchedule::kDirtyPairs) {
    rater_agg_.resize(inner_->size());
    hist_slots_.resize(inner_->size());
    social_cache_.enable_dirty_tracking();
  }
  if (effective_threads() > 1) {
    pool_ = std::make_unique<util::ThreadPool>(effective_threads());
  }
  auto& registry = obs::Obs::instance().registry();
  obs_.total_us = &registry.histogram("socialtrust.update.total_us");
  obs_.collect_us = &registry.histogram("socialtrust.update.collect_us");
  obs_.loo_us = &registry.histogram("socialtrust.update.loo_us");
  obs_.adjust_us = &registry.histogram("socialtrust.update.adjust_us");
  obs_.intervals = &registry.counter("socialtrust.intervals");
  obs_.ratings_seen = &registry.counter("socialtrust.ratings_seen");
  obs_.pairs_total = &registry.counter("socialtrust.pairs_total");
  obs_.pairs_flagged = &registry.counter("socialtrust.pairs_flagged");
  obs_.ratings_adjusted = &registry.counter("socialtrust.ratings_adjusted");
  obs_.pairs_dirty = &registry.counter("socialtrust.pairs_dirty");
  obs_.pairs_carried = &registry.counter("socialtrust.pairs_carried");
  obs_.dirty_scan_us = &registry.histogram("socialtrust.dirty_scan_us");
  obs_.cache_hit_rate = &registry.gauge("social_cache.hit_rate_pct");
}

SocialTrustPlugin::~SocialTrustPlugin() = default;

const shard::ShardStats* SocialTrustPlugin::last_shard_stats() const noexcept {
  return sharded_ ? &sharded_->last_stats() : nullptr;
}

std::size_t SocialTrustPlugin::effective_threads() const noexcept {
  if (config_.threads != 0) return config_.threads;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void SocialTrustPlugin::run_blocks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (pool_) {
    pool_->parallel_for(n, kPairBlock, fn);
    return;
  }
  for (std::size_t begin = 0; begin < n; begin += kPairBlock) {
    fn(begin, std::min(begin + kPairBlock, n));
  }
}

// --- LooAggregate -----------------------------------------------------------

void SocialTrustPlugin::LooAggregate::add(double v) noexcept {
  if (n == 0) {
    min1 = min2 = max1 = max2 = v;
  } else {
    if (v < min1) {
      min2 = min1;
      min1 = v;
    } else if (n == 1 || v < min2) {
      min2 = v;
    }
    if (v > max1) {
      max2 = max1;
      max1 = v;
    } else if (n == 1 || v > max2) {
      max2 = v;
    }
  }
  sum += v;
  sum_sq += v * v;
  ++n;
}

bool SocialTrustPlugin::LooAggregate::without(
    double v, CoefficientStats& out) const noexcept {
  if (n <= 1) return false;
  out.mean = (sum - v) / static_cast<double>(n - 1);
  out.min = (v == min1) ? min2 : min1;
  out.max = (v == max1) ? max2 : max1;
  out.stddev = population_stddev(sum - v, sum_sq - v * v, n - 1);
  return true;
}

CoefficientStats SocialTrustPlugin::LooAggregate::full() const noexcept {
  CoefficientStats out;
  if (n == 0) return out;
  out.mean = sum / static_cast<double>(n);
  out.min = min1;
  out.max = max1;
  out.stddev = population_stddev(sum, sum_sq, n);
  return out;
}

// --- helpers ----------------------------------------------------------------

double SocialTrustPlugin::closeness_cached(NodeId i, NodeId j) const {
  return social_cache_.closeness(closeness_model_, graph_, i, j);
}

double SocialTrustPlugin::similarity_of(NodeId i, NodeId j) const {
  return social_cache_.similarity(profiles_, i, j, config_.weighted_interests);
}

SocialTrustPlugin::LooAggregate SocialTrustPlugin::aggregate_over(
    NodeId rater, const std::vector<NodeId>& ratees, bool closeness) const {
  LooAggregate agg;
  for (NodeId j : ratees) {
    agg.add(closeness ? closeness_cached(rater, j) : similarity_of(rater, j));
  }
  return agg;
}

// --- update -----------------------------------------------------------------

void SocialTrustPlugin::update(std::span<const Rating> cycle_ratings) {
  if (config_.aggregation == AggregationMode::kSharded) {
    update_sharded(cycle_ratings);
    return;
  }
  // Stage timers (no-ops when st::obs is disabled). The three stage
  // spans cover: collect = pair tally + sort + coefficient collection +
  // system baseline; loo = per-rater leave-one-out aggregates; adjust =
  // detect-and-adjust + ordered reduction.
  obs::ScopedTimer total_timer(*obs_.total_us);
  obs::ScopedTimer collect_timer(*obs_.collect_us);
  double collect_us = 0.0, loo_us = 0.0, adjust_us = 0.0;

  // No cache wipe here: social_cache_ persists across intervals and
  // revalidates each entry against graph/profile revisions, so values
  // whose social neighbourhood is unchanged since the last interval are
  // served without redoing the BFS / friend-of-friend work. The interval
  // tick only runs the (default-off) idle-entry eviction sweep.
  social_cache_.begin_interval(config_.cache_evict_intervals);
  adjusted_.assign(cycle_ratings.begin(), cycle_ratings.end());
  report_ = AdjustmentReport{};
  dirty_stats_ = DirtyStats{};
  const bool dirty_mode = config_.schedule == UpdateSchedule::kDirtyPairs;

  // 1. Tally pairs and extend per-rater rating history (serial: mutates
  // rated_history_, which every later pass reads concurrently). Both
  // schedules produce the identical canonical view of the interval —
  // pair keys sorted by (rater, ratee), per-pair t+/t- tallies, and a
  // CSR of each pair's rating indices in stream order — they only build
  // it differently: the full walk hashes into a PairMap and sorts (the
  // oracle's straightforward shape), the dirty scheduler routes every
  // rating to its pair's stable slot with one small binary search in the
  // rater's sorted history and recovers the canonical order by walking
  // raters ascending — no hash map, no sort, no per-interval clearing
  // (slot scratch is stamp-gated by interval_seq_).
  std::vector<PairKey> keys;
  std::vector<double> tally_pos, tally_neg;
  std::vector<std::uint32_t> ridx_off;  // n_pairs + 1, CSR offsets
  std::vector<std::uint32_t> ridx;      // rating indices, stream order
  std::vector<std::uint32_t> active_slots;  // dirty mode: pair i's slot

  if (!dirty_mode) {
    PairMap pairs;
    for (std::size_t idx = 0; idx < adjusted_.size(); ++idx) {
      const Rating& r = adjusted_[idx];
      if (r.rater >= inner_->size() || r.ratee >= inner_->size() ||
          r.rater == r.ratee) {
        continue;
      }
      PairTally& tally = pairs[PairKey{r.rater, r.ratee}];
      if (r.value > 0.0) {
        tally.positive += 1.0;
      } else if (r.value < 0.0) {
        tally.negative += 1.0;
      }
      tally.rating_indices.push_back(idx);

      auto& hist = rated_history_[r.rater];
      auto it = std::lower_bound(hist.begin(), hist.end(), r.ratee);
      if (it == hist.end() || *it != r.ratee) {
        hist.insert(it, r.ratee);
      }
    }

    // Flatten to the canonical (rater, ratee) order. Hash-map iteration
    // order is an implementation accident; sorting pins down every
    // floating-point accumulation below and keeps report_.flagged
    // ordered by pair key, independent of the worker count.
    std::vector<PairWork> work;
    work.reserve(pairs.size());
    // st-lint recognises this flatten-then-sort shape (the std::sort
    // below pins the order), so no suppression is needed.
    for (auto& [key, tally] : pairs) {
      work.push_back(PairWork{key, std::move(tally)});
    }
    std::sort(work.begin(), work.end(),
              [](const PairWork& a, const PairWork& b) {
                return a.key.rater != b.key.rater ? a.key.rater < b.key.rater
                                                  : a.key.ratee < b.key.ratee;
              });

    keys.reserve(work.size());
    tally_pos.reserve(work.size());
    tally_neg.reserve(work.size());
    ridx_off.reserve(work.size() + 1);
    ridx.reserve(adjusted_.size());
    ridx_off.push_back(0);
    for (const PairWork& w : work) {
      keys.push_back(w.key);
      tally_pos.push_back(w.tally.positive);
      tally_neg.push_back(w.tally.negative);
      for (std::size_t idx : w.tally.rating_indices) {
        ridx.push_back(static_cast<std::uint32_t>(idx));
      }
      ridx_off.push_back(static_cast<std::uint32_t>(ridx.size()));
    }
  } else {
    ++interval_seq_;
    // Pass A: route each rating to its pair's slot (assigning fresh
    // slots to first-ever pairs), stamp the slot into this interval, and
    // tally. rating_slot remembers the routing so the CSR fill below
    // does not repeat the binary search.
    std::vector<std::uint32_t> rating_slot(adjusted_.size(), kNoSlot);
    std::size_t active_count = 0;
    std::size_t valid_ratings = 0;
    for (std::size_t idx = 0; idx < adjusted_.size(); ++idx) {
      const Rating& r = adjusted_[idx];
      if (r.rater >= inner_->size() || r.ratee >= inner_->size() ||
          r.rater == r.ratee) {
        continue;
      }
      auto& hist = rated_history_[r.rater];
      auto& slots = hist_slots_[r.rater];
      auto it = std::lower_bound(hist.begin(), hist.end(), r.ratee);
      const std::size_t pos = static_cast<std::size_t>(it - hist.begin());
      if (it == hist.end() || *it != r.ratee) {
        hist.insert(it, r.ratee);
        slots.insert(slots.begin() + static_cast<std::ptrdiff_t>(pos),
                     new_slot());
        // The rater's carried leave-one-out aggregates cover a
        // population that just grew — rebuild them this interval.
        rater_agg_[r.rater].valid = false;
      }
      const std::uint32_t slot = slots[pos];
      rating_slot[idx] = slot;
      ++valid_ratings;
      if (slot_stamp_[slot] != interval_seq_) {
        slot_stamp_[slot] = interval_seq_;
        slot_pos_[slot] = 0.0;
        slot_neg_[slot] = 0.0;
        slot_ratings_[slot] = 0;
        ++active_count;
      }
      if (r.value > 0.0) {
        slot_pos_[slot] += 1.0;
      } else if (r.value < 0.0) {
        slot_neg_[slot] += 1.0;
      }
      ++slot_ratings_[slot];
    }

    // Pass B: recover the canonical (rater, ratee) order without
    // sorting — raters ascend, each history is already sorted by ratee,
    // and the stamp picks out exactly this interval's active pairs.
    keys.reserve(active_count);
    active_slots.reserve(active_count);
    tally_pos.reserve(active_count);
    tally_neg.reserve(active_count);
    ridx_off.reserve(active_count + 1);
    ridx_off.push_back(0);
    for (NodeId rater = 0; rater < rated_history_.size(); ++rater) {
      const auto& hist = rated_history_[rater];
      const auto& slots = hist_slots_[rater];
      for (std::size_t k = 0; k < hist.size(); ++k) {
        const std::uint32_t slot = slots[k];
        if (slot_stamp_[slot] != interval_seq_) continue;
        slot_active_idx_[slot] = static_cast<std::uint32_t>(keys.size());
        keys.push_back(PairKey{rater, hist[k]});
        active_slots.push_back(slot);
        tally_pos.push_back(slot_pos_[slot]);
        tally_neg.push_back(slot_neg_[slot]);
        ridx_off.push_back(ridx_off.back() + slot_ratings_[slot]);
      }
    }

    // Pass C: CSR fill in stream order (the same order the PairMap's
    // per-pair push_backs produce, so pass 4 touches ratings in
    // identical order under both schedules).
    ridx.resize(valid_ratings);
    std::vector<std::uint32_t> cursor(ridx_off.begin(), ridx_off.end() - 1);
    for (std::size_t idx = 0; idx < adjusted_.size(); ++idx) {
      const std::uint32_t slot = rating_slot[idx];
      if (slot == kNoSlot) continue;
      const std::uint32_t ai = slot_active_idx_[slot];
      ridx[cursor[ai]++] = static_cast<std::uint32_t>(idx);
    }
  }
  const std::size_t n_pairs = keys.size();
  report_.pairs_total = n_pairs;

  // 2. System-average per-pair frequency F for this interval.
  double total_count = 0.0;
  for (std::size_t i = 0; i < n_pairs; ++i)
    total_count += tally_pos[i] + tally_neg[i];
  double avg_freq =
      n_pairs == 0 ? 0.0 : total_count / static_cast<double>(n_pairs);

  // 2b. Dirty worklist derivation (dirty mode only): drain the cache's
  // invalidated-key report and apply it to the carried state. A dirty
  // closeness key (i,j) kills pair (i,j)'s coefficients and rater i's
  // aggregates (they sum closeness(i, *)); a dirty similarity key is
  // canonical, so it kills both directions and both endpoints' aggregates.
  if (dirty_mode) {
    obs::ScopedTimer scan_timer(*obs_.dirty_scan_us);
    const SocialStateCache::DirtyKeys dirty =
        social_cache_.collect_dirty(graph_, profiles_);
    auto kill_slot = [this](NodeId rater, NodeId ratee) {
      const std::uint32_t slot = slot_of(rater, ratee);
      if (slot != kNoSlot) slot_valid_[slot] = 0;
    };
    for (std::uint64_t key : dirty.closeness) {
      const NodeId rater = SocialStateCache::key_first(key);
      kill_slot(rater, SocialStateCache::key_second(key));
      if (rater < rater_agg_.size()) rater_agg_[rater].valid = false;
    }
    for (std::uint64_t key : dirty.similarity) {
      const NodeId lo = SocialStateCache::key_first(key);
      const NodeId hi = SocialStateCache::key_second(key);
      kill_slot(lo, hi);
      kill_slot(hi, lo);
      if (lo < rater_agg_.size()) rater_agg_[lo].valid = false;
      if (hi < rater_agg_.size()) rater_agg_[hi].valid = false;
    }
    dirty_stats_.scan_us = scan_timer.stop();
  }

  // 3a. Pair coefficients. Full walk: recompute every active pair
  // through the cache (parallel; each index writes only its own slot).
  // Dirty: clean slots carry their coefficients forward with one indexed
  // array read; only invalid slots go through the cache (blocked over
  // the ascending dirty-index list, so "block k" is the same work at
  // every thread count), and the recomputed coefficients are published
  // back to the slot arrays serially. Either way pair_c/pair_s hold the
  // exact values a full recompute yields — carried entries are
  // witness-clean by construction — so everything downstream is
  // schedule-independent.
  std::vector<double> pair_c(n_pairs), pair_s(n_pairs);
  if (!dirty_mode) {
    dirty_stats_.pairs_dirty = n_pairs;
    run_blocks(n_pairs, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        pair_c[i] = closeness_cached(keys[i].rater, keys[i].ratee);
        pair_s[i] = similarity_of(keys[i].rater, keys[i].ratee);
      }
    });
  } else {
    std::vector<std::size_t> dirty_idx;
    for (std::size_t i = 0; i < n_pairs; ++i) {
      const std::uint32_t slot = active_slots[i];
      if (slot_valid_[slot]) {
        pair_c[i] = slot_coeff_[slot].closeness;
        pair_s[i] = slot_coeff_[slot].similarity;
      } else {
        dirty_idx.push_back(i);
      }
    }
    run_blocks(dirty_idx.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t k = begin; k < end; ++k) {
        const std::size_t i = dirty_idx[k];
        pair_c[i] = closeness_cached(keys[i].rater, keys[i].ratee);
        pair_s[i] = similarity_of(keys[i].rater, keys[i].ratee);
      }
    });
    for (std::size_t i : dirty_idx) {
      const std::uint32_t slot = active_slots[i];
      slot_coeff_[slot] = PairCoeff{pair_c[i], pair_s[i]};
      slot_valid_[slot] = 1;
    }
    dirty_stats_.pairs_dirty = dirty_idx.size();
    dirty_stats_.pairs_carried = n_pairs - dirty_idx.size();
  }

  // 3b. Gaussian baseline statistics.
  // System-wide aggregates over this interval's active pairs serve either
  // as the primary baseline (BaselineSource::kSystemWide — the paper's
  // "empirical" alternative), as the hybrid's second opinion, or as the
  // fallback when a rater's leave-one-out set is empty. They use robust
  // statistics (median centre, MAD-derived width): colluding pairs can be
  // a sizeable fraction of the interval's pairs, and with mean/stddev the
  // attack would inflate the baseline spread enough to exonerate itself.
  std::vector<double> sys_c_values = pair_c;
  std::vector<double> sys_s_values = pair_s;
  const CoefficientStats system_c = robust_stats(sys_c_values);
  const CoefficientStats system_s = robust_stats(sys_s_values);
  collect_us = collect_timer.stop();

  obs::ScopedTimer loo_timer(*obs_.loo_us);
  // 3c. Per-rater aggregates over each rater's cumulative rated set
  // (parallel over distinct raters; each rater's multiset is built by one
  // thread, in rated_history_ order, so its contents are scheduling-free).
  const bool use_per_rater = config_.baseline != BaselineSource::kSystemWide;
  std::vector<NodeId> raters;  // sorted, unique (work is rater-sorted)
  std::vector<LooAggregate> rater_c_agg, rater_s_agg;
  if (use_per_rater) {
    raters.reserve(n_pairs);
    for (const PairKey& key : keys) {
      if (raters.empty() || raters.back() != key.rater)
        raters.push_back(key.rater);
    }
    if (!dirty_mode) {
      dirty_stats_.raters_rebuilt = raters.size();
      rater_c_agg.resize(raters.size());
      rater_s_agg.resize(raters.size());
      run_blocks(raters.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          rater_c_agg[i] = aggregate_over(raters[i], rated_history_[raters[i]],
                                          /*closeness=*/true);
          rater_s_agg[i] = aggregate_over(raters[i], rated_history_[raters[i]],
                                          /*closeness=*/false);
        }
      });
    } else {
      // Rebuild only invalidated raters; everyone else carries the exact
      // aggregate a rebuild would reproduce (same sorted history, same
      // coefficient bits — see RaterAggregates). Distinct raters write
      // disjoint slots, so the blocked pass stays race-free, and which
      // raters rebuild depends only on data, never on scheduling.
      std::size_t invalid = 0;
      for (NodeId r : raters) invalid += rater_agg_[r].valid ? 0 : 1;
      dirty_stats_.raters_rebuilt = invalid;
      dirty_stats_.raters_carried = raters.size() - invalid;
      run_blocks(raters.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          RaterAggregates& agg = rater_agg_[raters[i]];
          if (agg.valid) continue;
          agg.closeness = aggregate_over(raters[i], rated_history_[raters[i]],
                                         /*closeness=*/true);
          agg.similarity = aggregate_over(raters[i], rated_history_[raters[i]],
                                          /*closeness=*/false);
          agg.valid = true;
        }
      });
    }
  }
  loo_us = loo_timer.stop();

  obs::ScopedTimer adjust_timer(*obs_.adjust_us);
  // 4. Detect and adjust (parallel). A rating index belongs to exactly
  // one pair, so adjusted_ writes are disjoint; everything else lands in
  // the block's own partial.
  const std::size_t n_blocks = (n_pairs + kPairBlock - 1) / kPairBlock;
  std::vector<BlockPartial> partials(n_blocks);
  run_blocks(n_pairs, [&](std::size_t begin, std::size_t end) {
    BlockPartial& part = partials[begin / kPairBlock];
    for (std::size_t i = begin; i < end; ++i) {
      const PairKey key = keys[i];

      // Leave-one-out per-rater stats (Section 4.1's "other nodes it has
      // rated"), falling back to the system-wide empirical baseline.
      CoefficientStats c_stats = system_c;
      CoefficientStats s_stats = system_s;
      if (use_per_rater) {
        if (dirty_mode) {
          const RaterAggregates& agg = rater_agg_[key.rater];
          agg.closeness.without(pair_c[i], c_stats);
          agg.similarity.without(pair_s[i], s_stats);
        } else {
          const std::size_t ri = static_cast<std::size_t>(
              std::lower_bound(raters.begin(), raters.end(), key.rater) -
              raters.begin());
          rater_c_agg[ri].without(pair_c[i], c_stats);
          rater_s_agg[ri].without(pair_s[i], s_stats);
        }
      }

      PairEvidence evidence;
      evidence.positive_count = tally_pos[i];
      evidence.negative_count = tally_neg[i];
      evidence.closeness = pair_c[i];
      evidence.similarity = pair_s[i];
      evidence.ratee_reputation = inner_->reputation(key.ratee);
      evidence.rater_closeness = c_stats;

      Behavior behavior = detector_.classify(evidence, avg_freq);
      if (any(behavior & Behavior::kB1)) ++part.b1;
      if (any(behavior & Behavior::kB2)) ++part.b2;
      if (any(behavior & Behavior::kB3)) ++part.b3;
      if (any(behavior & Behavior::kB4)) ++part.b4;

      bool adjust = config_.gate_on_detector ? any(behavior) : true;
      if (!adjust) continue;
      if (any(behavior)) ++part.pairs_flagged;

      double weight =
          adjustment_weight(config_.components, pair_c[i], c_stats,
                            pair_s[i], s_stats, config_.alpha, config_.width);
      if (config_.baseline == BaselineSource::kHybrid) {
        // Hybrid: also evaluate against the system-wide baseline and keep
        // the stronger attenuation — robust to per-rater baselines that a
        // multi-conspirator colluder has poisoned with its own pairs.
        weight = std::min(
            weight, adjustment_weight(config_.components, pair_c[i],
                                      system_c, pair_s[i], system_s,
                                      config_.alpha, config_.width));
      }
      if (any(behavior)) {
        part.flagged.push_back(
            FlaggedPair{key.rater, key.ratee, behavior, weight});
      }
      for (std::uint32_t k = ridx_off[i]; k < ridx_off[i + 1]; ++k) {
        adjusted_[ridx[k]].value *= weight;
        ++part.ratings_adjusted;
        part.weight_sum += weight;
      }
    }
  });

  // Reduce partials in block-index order: integer counters, the
  // floating-point weight sum (same summation tree for every worker
  // count), and the flagged list (blocks are contiguous ranges of the
  // sorted pair list, so concatenation stays key-ordered).
  double weight_sum = 0.0;
  for (const BlockPartial& part : partials) {
    report_.pairs_flagged += part.pairs_flagged;
    report_.ratings_adjusted += part.ratings_adjusted;
    report_.b1 += part.b1;
    report_.b2 += part.b2;
    report_.b3 += part.b3;
    report_.b4 += part.b4;
    weight_sum += part.weight_sum;
    report_.flagged.insert(report_.flagged.end(), part.flagged.begin(),
                           part.flagged.end());
  }
  report_.mean_weight = report_.ratings_adjusted > 0
                            ? weight_sum /
                                  static_cast<double>(report_.ratings_adjusted)
                            : 1.0;
  adjust_us = adjust_timer.stop();

  // 5. Feed the adjusted stream to the wrapped system.
  inner_->update(adjusted_);

  // Observation only — nothing below feeds back into the adjustment, so
  // the bit-identity contract (DESIGN.md §11) is untouched by obs state.
  if (obs::enabled()) {
    const double total_us = total_timer.stop();
    // This interval's cache hit rate: delta of the cache's cumulative
    // per-instance totals since the last report.
    const SocialStateCache::StatsSnapshot cache_stats = social_cache_.stats();
    const std::uint64_t interval_hits = cache_stats.hits - cache_hits_reported_;
    const std::uint64_t interval_misses =
        cache_stats.misses - cache_misses_reported_;
    cache_hits_reported_ = cache_stats.hits;
    cache_misses_reported_ = cache_stats.misses;
    const std::uint64_t interval_lookups = interval_hits + interval_misses;
    const double hit_rate_pct =
        interval_lookups > 0 ? 100.0 * static_cast<double>(interval_hits) /
                                   static_cast<double>(interval_lookups)
                             : 0.0;
    obs_.cache_hit_rate->set(static_cast<std::int64_t>(hit_rate_pct));
    obs_.intervals->add(1);
    obs_.ratings_seen->add(cycle_ratings.size());
    obs_.pairs_total->add(report_.pairs_total);
    obs_.pairs_flagged->add(report_.pairs_flagged);
    obs_.ratings_adjusted->add(report_.ratings_adjusted);
    obs_.pairs_dirty->add(dirty_stats_.pairs_dirty);
    obs_.pairs_carried->add(dirty_stats_.pairs_carried);
    const obs::ExtraField extras[] = {
        {"pairs_total", static_cast<double>(report_.pairs_total)},
        {"pairs_flagged", static_cast<double>(report_.pairs_flagged)},
        {"ratings_adjusted", static_cast<double>(report_.ratings_adjusted)},
        {"b1", static_cast<double>(report_.b1)},
        {"b2", static_cast<double>(report_.b2)},
        {"b3", static_cast<double>(report_.b3)},
        {"b4", static_cast<double>(report_.b4)},
        {"mean_weight", report_.mean_weight},
        {"collect_us", collect_us},
        {"loo_us", loo_us},
        {"adjust_us", adjust_us},
        {"total_us", total_us},
        {"social_cache_entries", static_cast<double>(social_cache_.size())},
        {"social_cache_hit_rate_pct", hit_rate_pct},
        {"pairs_dirty", static_cast<double>(dirty_stats_.pairs_dirty)},
        {"pairs_carried", static_cast<double>(dirty_stats_.pairs_carried)},
        {"dirty_scan_us", dirty_stats_.scan_us},
        {"threads", static_cast<double>(effective_threads())},
    };
    obs::Obs::instance().emit_interval("socialtrust.update", name_, extras);
  }
}

void SocialTrustPlugin::update_sharded(std::span<const Rating> cycle_ratings) {
  obs::ScopedTimer total_timer(*obs_.total_us);
  if (!sharded_) {
    sharded_ = std::make_unique<shard::ShardedAggregator>(
        graph_, profiles_, config_, *inner_, pool_.get(), name_);
  }
  adjusted_.assign(cycle_ratings.begin(), cycle_ratings.end());
  report_ = AdjustmentReport{};
  dirty_stats_ = DirtyStats{};
  sharded_->update(adjusted_, report_, dirty_stats_);
  inner_->update(adjusted_);

  // Observation only, mirroring the centralized emission. The per-phase
  // split (local / exchange / reduce) lives in the aggregator's own
  // "shard.update" event; the stage fields specific to the centralized
  // pipeline are reported as zero here.
  if (obs::enabled()) {
    const double total_us = total_timer.stop();
    const SocialStateCache::StatsSnapshot cache_stats =
        sharded_->cache_stats();
    const std::uint64_t interval_hits = cache_stats.hits - cache_hits_reported_;
    const std::uint64_t interval_misses =
        cache_stats.misses - cache_misses_reported_;
    cache_hits_reported_ = cache_stats.hits;
    cache_misses_reported_ = cache_stats.misses;
    const std::uint64_t interval_lookups = interval_hits + interval_misses;
    const double hit_rate_pct =
        interval_lookups > 0 ? 100.0 * static_cast<double>(interval_hits) /
                                   static_cast<double>(interval_lookups)
                             : 0.0;
    obs_.cache_hit_rate->set(static_cast<std::int64_t>(hit_rate_pct));
    obs_.intervals->add(1);
    obs_.ratings_seen->add(cycle_ratings.size());
    obs_.pairs_total->add(report_.pairs_total);
    obs_.pairs_flagged->add(report_.pairs_flagged);
    obs_.ratings_adjusted->add(report_.ratings_adjusted);
    obs_.pairs_dirty->add(dirty_stats_.pairs_dirty);
    obs_.pairs_carried->add(dirty_stats_.pairs_carried);
    const obs::ExtraField extras[] = {
        {"pairs_total", static_cast<double>(report_.pairs_total)},
        {"pairs_flagged", static_cast<double>(report_.pairs_flagged)},
        {"ratings_adjusted", static_cast<double>(report_.ratings_adjusted)},
        {"b1", static_cast<double>(report_.b1)},
        {"b2", static_cast<double>(report_.b2)},
        {"b3", static_cast<double>(report_.b3)},
        {"b4", static_cast<double>(report_.b4)},
        {"mean_weight", report_.mean_weight},
        {"collect_us", 0.0},
        {"loo_us", 0.0},
        {"adjust_us", 0.0},
        {"total_us", total_us},
        {"social_cache_entries", 0.0},
        {"social_cache_hit_rate_pct", hit_rate_pct},
        {"pairs_dirty", static_cast<double>(dirty_stats_.pairs_dirty)},
        {"pairs_carried", static_cast<double>(dirty_stats_.pairs_carried)},
        {"dirty_scan_us", dirty_stats_.scan_us},
        {"threads", static_cast<double>(effective_threads())},
    };
    obs::Obs::instance().emit_interval("socialtrust.update", name_, extras);
  }
}

void SocialTrustPlugin::forget_node(NodeId node) {
  inner_->forget_node(node);
  if (sharded_) sharded_->forget_node(node);
  const bool dirty_mode = config_.schedule == UpdateSchedule::kDirtyPairs;
  if (node < rated_history_.size()) {
    // Carried coefficients naming the node describe the dead identity:
    // invalidate every slot the node rated through. The slot ids
    // themselves are retired with their history entries (a re-entering
    // identity earns fresh slots); retired ids are simply never reused —
    // a bounded leak proportional to whitewash volume, not interval
    // count. (The cache's erase log would also surface these pairs next
    // interval via invalidate_node below; dropping them here keeps the
    // plugin's own state self-consistent without waiting a cycle.)
    if (dirty_mode) {
      for (std::uint32_t slot : hist_slots_[node]) slot_valid_[slot] = 0;
      hist_slots_[node].clear();
    }
    rated_history_[node].clear();
  }
  // The discarded identity also disappears from other raters' histories —
  // and a shrunken history invalidates that rater's carried aggregates.
  for (std::size_t r = 0; r < rated_history_.size(); ++r) {
    auto& hist = rated_history_[r];
    auto it = std::lower_bound(hist.begin(), hist.end(), node);
    if (it != hist.end() && *it == node) {
      const std::size_t pos = static_cast<std::size_t>(it - hist.begin());
      hist.erase(it);
      if (dirty_mode) {
        auto& slots = hist_slots_[r];
        slot_valid_[slots[pos]] = 0;
        slots.erase(slots.begin() + static_cast<std::ptrdiff_t>(pos));
      }
      if (r < rater_agg_.size()) rater_agg_[r].valid = false;
    }
  }
  if (node < rater_agg_.size()) rater_agg_[node] = RaterAggregates{};
  // Whitewashing hook: cached closeness/similarity mentioning the node is
  // stale the moment its new identity starts from a blank social record.
  social_cache_.invalidate_node(node);
}

void SocialTrustPlugin::reset() {
  inner_->reset();
  if (sharded_) sharded_->reset();
  for (auto& hist : rated_history_) hist.clear();
  social_cache_.clear();
  for (auto& slots : hist_slots_) slots.clear();
  slot_coeff_.clear();
  slot_valid_.clear();
  slot_stamp_.clear();
  slot_pos_.clear();
  slot_neg_.clear();
  slot_ratings_.clear();
  slot_active_idx_.clear();
  interval_seq_ = 0;
  for (auto& agg : rater_agg_) agg = RaterAggregates{};
  adjusted_.clear();
  report_ = AdjustmentReport{};
  dirty_stats_ = DirtyStats{};
}

std::uint32_t SocialTrustPlugin::new_slot() {
  const auto id = static_cast<std::uint32_t>(slot_coeff_.size());
  slot_coeff_.push_back(PairCoeff{});
  slot_valid_.push_back(0);
  slot_stamp_.push_back(0);
  slot_pos_.push_back(0.0);
  slot_neg_.push_back(0.0);
  slot_ratings_.push_back(0);
  slot_active_idx_.push_back(0);
  return id;
}

std::uint32_t SocialTrustPlugin::slot_of(NodeId rater,
                                         NodeId ratee) const noexcept {
  if (rater >= rated_history_.size()) return kNoSlot;
  const auto& hist = rated_history_[rater];
  const auto it = std::lower_bound(hist.begin(), hist.end(), ratee);
  if (it == hist.end() || *it != ratee) return kNoSlot;
  return hist_slots_[rater][static_cast<std::size_t>(it - hist.begin())];
}

}  // namespace st::core
