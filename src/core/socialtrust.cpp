#include "core/socialtrust.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>

namespace st::core {

using reputation::NodeId;
using reputation::PairKey;
using reputation::Rating;

SocialTrustPlugin::SocialTrustPlugin(
    std::unique_ptr<reputation::ReputationSystem> inner,
    const graph::SocialGraph& graph, const InterestProfiles& profiles,
    SocialTrustConfig config)
    : inner_(std::move(inner)),
      graph_(graph),
      profiles_(profiles),
      config_(config),
      closeness_model_(config.weighted_relationships, config.lambda),
      detector_(config) {
  if (!inner_) throw std::invalid_argument("SocialTrustPlugin: null inner");
  if (graph_.size() < inner_->size() ||
      profiles_.node_count() < inner_->size()) {
    throw std::invalid_argument(
        "SocialTrustPlugin: graph/profiles smaller than reputation domain");
  }
  name_ = std::string(inner_->name()) + "+SocialTrust";
  rated_history_.resize(inner_->size());
  if (effective_threads() > 1) {
    pool_ = std::make_unique<util::ThreadPool>(effective_threads());
  }
  auto& registry = obs::Obs::instance().registry();
  obs_.total_us = &registry.histogram("socialtrust.update.total_us");
  obs_.collect_us = &registry.histogram("socialtrust.update.collect_us");
  obs_.loo_us = &registry.histogram("socialtrust.update.loo_us");
  obs_.adjust_us = &registry.histogram("socialtrust.update.adjust_us");
  obs_.intervals = &registry.counter("socialtrust.intervals");
  obs_.ratings_seen = &registry.counter("socialtrust.ratings_seen");
  obs_.pairs_total = &registry.counter("socialtrust.pairs_total");
  obs_.pairs_flagged = &registry.counter("socialtrust.pairs_flagged");
  obs_.ratings_adjusted = &registry.counter("socialtrust.ratings_adjusted");
  obs_.cache_hit_rate = &registry.gauge("social_cache.hit_rate_pct");
}

std::size_t SocialTrustPlugin::effective_threads() const noexcept {
  if (config_.threads != 0) return config_.threads;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void SocialTrustPlugin::run_blocks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (pool_) {
    pool_->parallel_for(n, kPairBlock, fn);
    return;
  }
  for (std::size_t begin = 0; begin < n; begin += kPairBlock) {
    fn(begin, std::min(begin + kPairBlock, n));
  }
}

// --- LooAggregate -----------------------------------------------------------

void SocialTrustPlugin::LooAggregate::add(double v) noexcept {
  if (n == 0) {
    min1 = min2 = max1 = max2 = v;
  } else {
    if (v < min1) {
      min2 = min1;
      min1 = v;
    } else if (n == 1 || v < min2) {
      min2 = v;
    }
    if (v > max1) {
      max2 = max1;
      max1 = v;
    } else if (n == 1 || v > max2) {
      max2 = v;
    }
  }
  sum += v;
  sum_sq += v * v;
  ++n;
}

namespace {
double population_stddev(double sum, double sum_sq, std::size_t n) noexcept {
  if (n == 0) return 0.0;
  double mean = sum / static_cast<double>(n);
  double var = sum_sq / static_cast<double>(n) - mean * mean;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}
}  // namespace

bool SocialTrustPlugin::LooAggregate::without(
    double v, CoefficientStats& out) const noexcept {
  if (n <= 1) return false;
  out.mean = (sum - v) / static_cast<double>(n - 1);
  out.min = (v == min1) ? min2 : min1;
  out.max = (v == max1) ? max2 : max1;
  out.stddev = population_stddev(sum - v, sum_sq - v * v, n - 1);
  return true;
}

CoefficientStats SocialTrustPlugin::LooAggregate::full() const noexcept {
  CoefficientStats out;
  if (n == 0) return out;
  out.mean = sum / static_cast<double>(n);
  out.min = min1;
  out.max = max1;
  out.stddev = population_stddev(sum, sum_sq, n);
  return out;
}

// --- helpers ----------------------------------------------------------------

namespace {

/// Median/MAD-based CoefficientStats. `values` is consumed (sorted in
/// place). The width is the normal-consistent 1.4826 * MAD; when the MAD
/// degenerates to zero (over half the values identical) it falls back to
/// the population stddev so genuinely spread data still gets a width.
CoefficientStats robust_stats(std::vector<double>& values) {
  CoefficientStats out;
  if (values.empty()) return out;
  auto median_of = [](std::vector<double>& v) {
    std::size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + static_cast<long>(mid), v.end());
    double m = v[mid];
    if (v.size() % 2 == 0) {
      double lower =
          *std::max_element(v.begin(), v.begin() + static_cast<long>(mid));
      m = (m + lower) / 2.0;
    }
    return m;
  };
  out.min = *std::min_element(values.begin(), values.end());
  out.max = *std::max_element(values.begin(), values.end());
  double med = median_of(values);
  out.mean = med;
  std::vector<double> deviations(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    deviations[i] = std::fabs(values[i] - med);
  double mad = median_of(deviations);
  if (mad > 0.0) {
    out.stddev = 1.4826 * mad;
  } else {
    double sum = 0.0, sum_sq = 0.0;
    for (double v : values) {
      sum += v;
      sum_sq += v * v;
    }
    double mean = sum / static_cast<double>(values.size());
    double var = sum_sq / static_cast<double>(values.size()) - mean * mean;
    out.stddev = var > 0.0 ? std::sqrt(var) : 0.0;
  }
  return out;
}

}  // namespace

double SocialTrustPlugin::closeness_cached(NodeId i, NodeId j) const {
  return social_cache_.closeness(closeness_model_, graph_, i, j);
}

double SocialTrustPlugin::similarity_of(NodeId i, NodeId j) const {
  return social_cache_.similarity(profiles_, i, j, config_.weighted_interests);
}

SocialTrustPlugin::LooAggregate SocialTrustPlugin::aggregate_over(
    NodeId rater, const std::vector<NodeId>& ratees, bool closeness) const {
  LooAggregate agg;
  for (NodeId j : ratees) {
    agg.add(closeness ? closeness_cached(rater, j) : similarity_of(rater, j));
  }
  return agg;
}

// --- update -----------------------------------------------------------------

void SocialTrustPlugin::update(std::span<const Rating> cycle_ratings) {
  // Stage timers (no-ops when st::obs is disabled). The three stage
  // spans cover: collect = pair tally + sort + coefficient collection +
  // system baseline; loo = per-rater leave-one-out aggregates; adjust =
  // detect-and-adjust + ordered reduction.
  obs::ScopedTimer total_timer(*obs_.total_us);
  obs::ScopedTimer collect_timer(*obs_.collect_us);
  double collect_us = 0.0, loo_us = 0.0, adjust_us = 0.0;

  // No cache wipe here: social_cache_ persists across intervals and
  // revalidates each entry against graph/profile revisions, so values
  // whose social neighbourhood is unchanged since the last interval are
  // served without redoing the BFS / friend-of-friend work. The interval
  // tick only runs the (default-off) idle-entry eviction sweep.
  social_cache_.begin_interval(config_.cache_evict_intervals);
  adjusted_.assign(cycle_ratings.begin(), cycle_ratings.end());
  report_ = AdjustmentReport{};

  // 1. Tally pairs and extend per-rater rating history (serial: mutates
  // rated_history_, which every later pass reads concurrently).
  PairMap pairs;
  for (std::size_t idx = 0; idx < adjusted_.size(); ++idx) {
    const Rating& r = adjusted_[idx];
    if (r.rater >= inner_->size() || r.ratee >= inner_->size() ||
        r.rater == r.ratee) {
      continue;
    }
    PairTally& tally = pairs[PairKey{r.rater, r.ratee}];
    if (r.value > 0.0) {
      tally.positive += 1.0;
    } else if (r.value < 0.0) {
      tally.negative += 1.0;
    }
    tally.rating_indices.push_back(idx);

    auto& hist = rated_history_[r.rater];
    auto it = std::lower_bound(hist.begin(), hist.end(), r.ratee);
    if (it == hist.end() || *it != r.ratee) hist.insert(it, r.ratee);
  }
  report_.pairs_total = pairs.size();

  // Flatten to the canonical (rater, ratee) order. Hash-map iteration
  // order is an implementation accident; sorting pins down every
  // floating-point accumulation below and keeps report_.flagged ordered
  // by pair key, independent of the worker count.
  std::vector<PairWork> work;
  work.reserve(pairs.size());
  // st-lint recognises this flatten-then-sort shape (the std::sort below
  // pins the order), so no suppression is needed.
  for (auto& [key, tally] : pairs) {
    work.push_back(PairWork{key, std::move(tally)});
  }
  std::sort(work.begin(), work.end(),
            [](const PairWork& a, const PairWork& b) {
              return a.key.rater != b.key.rater ? a.key.rater < b.key.rater
                                                : a.key.ratee < b.key.ratee;
            });
  const std::size_t n_pairs = work.size();

  // 2. System-average per-pair frequency F for this interval.
  double total_count = 0.0;
  for (const PairWork& w : work)
    total_count += w.tally.positive + w.tally.negative;
  double avg_freq =
      work.empty() ? 0.0 : total_count / static_cast<double>(n_pairs);

  // 3a. Pair coefficients (parallel). Each index writes only its own
  // slot; closeness lookups go through the sharded cache.
  std::vector<double> pair_c(n_pairs), pair_s(n_pairs);
  run_blocks(n_pairs, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      pair_c[i] = closeness_cached(work[i].key.rater, work[i].key.ratee);
      pair_s[i] = similarity_of(work[i].key.rater, work[i].key.ratee);
    }
  });

  // 3b. Gaussian baseline statistics.
  // System-wide aggregates over this interval's active pairs serve either
  // as the primary baseline (BaselineSource::kSystemWide — the paper's
  // "empirical" alternative), as the hybrid's second opinion, or as the
  // fallback when a rater's leave-one-out set is empty. They use robust
  // statistics (median centre, MAD-derived width): colluding pairs can be
  // a sizeable fraction of the interval's pairs, and with mean/stddev the
  // attack would inflate the baseline spread enough to exonerate itself.
  std::vector<double> sys_c_values = pair_c;
  std::vector<double> sys_s_values = pair_s;
  const CoefficientStats system_c = robust_stats(sys_c_values);
  const CoefficientStats system_s = robust_stats(sys_s_values);
  collect_us = collect_timer.stop();

  obs::ScopedTimer loo_timer(*obs_.loo_us);
  // 3c. Per-rater aggregates over each rater's cumulative rated set
  // (parallel over distinct raters; each rater's multiset is built by one
  // thread, in rated_history_ order, so its contents are scheduling-free).
  const bool use_per_rater = config_.baseline != BaselineSource::kSystemWide;
  std::vector<NodeId> raters;  // sorted, unique (work is rater-sorted)
  std::vector<LooAggregate> rater_c_agg, rater_s_agg;
  if (use_per_rater) {
    raters.reserve(n_pairs);
    for (const PairWork& w : work) {
      if (raters.empty() || raters.back() != w.key.rater)
        raters.push_back(w.key.rater);
    }
    rater_c_agg.resize(raters.size());
    rater_s_agg.resize(raters.size());
    run_blocks(raters.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        rater_c_agg[i] = aggregate_over(raters[i], rated_history_[raters[i]],
                                        /*closeness=*/true);
        rater_s_agg[i] = aggregate_over(raters[i], rated_history_[raters[i]],
                                        /*closeness=*/false);
      }
    });
  }
  loo_us = loo_timer.stop();

  obs::ScopedTimer adjust_timer(*obs_.adjust_us);
  // 4. Detect and adjust (parallel). A rating index belongs to exactly
  // one pair, so adjusted_ writes are disjoint; everything else lands in
  // the block's own partial.
  const std::size_t n_blocks = (n_pairs + kPairBlock - 1) / kPairBlock;
  std::vector<BlockPartial> partials(n_blocks);
  run_blocks(n_pairs, [&](std::size_t begin, std::size_t end) {
    BlockPartial& part = partials[begin / kPairBlock];
    for (std::size_t i = begin; i < end; ++i) {
      const PairKey key = work[i].key;
      const PairTally& tally = work[i].tally;

      // Leave-one-out per-rater stats (Section 4.1's "other nodes it has
      // rated"), falling back to the system-wide empirical baseline.
      CoefficientStats c_stats = system_c;
      CoefficientStats s_stats = system_s;
      if (use_per_rater) {
        const std::size_t ri = static_cast<std::size_t>(
            std::lower_bound(raters.begin(), raters.end(), key.rater) -
            raters.begin());
        rater_c_agg[ri].without(pair_c[i], c_stats);
        rater_s_agg[ri].without(pair_s[i], s_stats);
      }

      PairEvidence evidence;
      evidence.positive_count = tally.positive;
      evidence.negative_count = tally.negative;
      evidence.closeness = pair_c[i];
      evidence.similarity = pair_s[i];
      evidence.ratee_reputation = inner_->reputation(key.ratee);
      evidence.rater_closeness = c_stats;

      Behavior behavior = detector_.classify(evidence, avg_freq);
      if (any(behavior & Behavior::kB1)) ++part.b1;
      if (any(behavior & Behavior::kB2)) ++part.b2;
      if (any(behavior & Behavior::kB3)) ++part.b3;
      if (any(behavior & Behavior::kB4)) ++part.b4;

      bool adjust = config_.gate_on_detector ? any(behavior) : true;
      if (!adjust) continue;
      if (any(behavior)) ++part.pairs_flagged;

      double weight =
          adjustment_weight(config_.components, pair_c[i], c_stats,
                            pair_s[i], s_stats, config_.alpha, config_.width);
      if (config_.baseline == BaselineSource::kHybrid) {
        // Hybrid: also evaluate against the system-wide baseline and keep
        // the stronger attenuation — robust to per-rater baselines that a
        // multi-conspirator colluder has poisoned with its own pairs.
        weight = std::min(
            weight, adjustment_weight(config_.components, pair_c[i],
                                      system_c, pair_s[i], system_s,
                                      config_.alpha, config_.width));
      }
      if (any(behavior)) {
        part.flagged.push_back(
            FlaggedPair{key.rater, key.ratee, behavior, weight});
      }
      for (std::size_t idx : tally.rating_indices) {
        adjusted_[idx].value *= weight;
        ++part.ratings_adjusted;
        part.weight_sum += weight;
      }
    }
  });

  // Reduce partials in block-index order: integer counters, the
  // floating-point weight sum (same summation tree for every worker
  // count), and the flagged list (blocks are contiguous ranges of the
  // sorted pair list, so concatenation stays key-ordered).
  double weight_sum = 0.0;
  for (const BlockPartial& part : partials) {
    report_.pairs_flagged += part.pairs_flagged;
    report_.ratings_adjusted += part.ratings_adjusted;
    report_.b1 += part.b1;
    report_.b2 += part.b2;
    report_.b3 += part.b3;
    report_.b4 += part.b4;
    weight_sum += part.weight_sum;
    report_.flagged.insert(report_.flagged.end(), part.flagged.begin(),
                           part.flagged.end());
  }
  report_.mean_weight = report_.ratings_adjusted > 0
                            ? weight_sum /
                                  static_cast<double>(report_.ratings_adjusted)
                            : 1.0;
  adjust_us = adjust_timer.stop();

  // 5. Feed the adjusted stream to the wrapped system.
  inner_->update(adjusted_);

  // Observation only — nothing below feeds back into the adjustment, so
  // the bit-identity contract (DESIGN.md §11) is untouched by obs state.
  if (obs::enabled()) {
    const double total_us = total_timer.stop();
    // This interval's cache hit rate: delta of the cache's cumulative
    // per-instance totals since the last report.
    const SocialStateCache::StatsSnapshot cache_stats = social_cache_.stats();
    const std::uint64_t interval_hits = cache_stats.hits - cache_hits_reported_;
    const std::uint64_t interval_misses =
        cache_stats.misses - cache_misses_reported_;
    cache_hits_reported_ = cache_stats.hits;
    cache_misses_reported_ = cache_stats.misses;
    const std::uint64_t interval_lookups = interval_hits + interval_misses;
    const double hit_rate_pct =
        interval_lookups > 0 ? 100.0 * static_cast<double>(interval_hits) /
                                   static_cast<double>(interval_lookups)
                             : 0.0;
    obs_.cache_hit_rate->set(static_cast<std::int64_t>(hit_rate_pct));
    obs_.intervals->add(1);
    obs_.ratings_seen->add(cycle_ratings.size());
    obs_.pairs_total->add(report_.pairs_total);
    obs_.pairs_flagged->add(report_.pairs_flagged);
    obs_.ratings_adjusted->add(report_.ratings_adjusted);
    const obs::ExtraField extras[] = {
        {"pairs_total", static_cast<double>(report_.pairs_total)},
        {"pairs_flagged", static_cast<double>(report_.pairs_flagged)},
        {"ratings_adjusted", static_cast<double>(report_.ratings_adjusted)},
        {"b1", static_cast<double>(report_.b1)},
        {"b2", static_cast<double>(report_.b2)},
        {"b3", static_cast<double>(report_.b3)},
        {"b4", static_cast<double>(report_.b4)},
        {"mean_weight", report_.mean_weight},
        {"collect_us", collect_us},
        {"loo_us", loo_us},
        {"adjust_us", adjust_us},
        {"total_us", total_us},
        {"social_cache_entries", static_cast<double>(social_cache_.size())},
        {"social_cache_hit_rate_pct", hit_rate_pct},
        {"threads", static_cast<double>(effective_threads())},
    };
    obs::Obs::instance().emit_interval("socialtrust.update", name_, extras);
  }
}

void SocialTrustPlugin::forget_node(NodeId node) {
  inner_->forget_node(node);
  if (node < rated_history_.size()) rated_history_[node].clear();
  // The discarded identity also disappears from other raters' histories.
  for (auto& hist : rated_history_) {
    auto it = std::lower_bound(hist.begin(), hist.end(), node);
    if (it != hist.end() && *it == node) hist.erase(it);
  }
  // Whitewashing hook: cached closeness/similarity mentioning the node is
  // stale the moment its new identity starts from a blank social record.
  social_cache_.invalidate_node(node);
}

void SocialTrustPlugin::reset() {
  inner_->reset();
  for (auto& hist : rated_history_) hist.clear();
  social_cache_.clear();
  adjusted_.clear();
  report_ = AdjustmentReport{};
}

}  // namespace st::core
