#include "core/resource_manager.hpp"

#include <stdexcept>

namespace st::core {

ResourceManagerNetwork::ResourceManagerNetwork(
    std::unique_ptr<reputation::ReputationSystem> inner,
    const graph::SocialGraph& graph, const InterestProfiles& profiles,
    SocialTrustConfig config, std::size_t manager_count)
    : manager_count_(manager_count) {
  if (manager_count_ == 0)
    throw std::invalid_argument(
        "ResourceManagerNetwork: need at least one manager");
  plugin_ = std::make_unique<SocialTrustPlugin>(std::move(inner), graph,
                                                profiles, config);
  name_ = std::string(plugin_->name()) + "(distributed)";
  manager_load_.assign(manager_count_, 0);
}

void ResourceManagerNetwork::update(
    std::span<const reputation::Rating> cycle_ratings) {
  traffic_ = ManagerTrafficReport{};
  std::fill(manager_load_.begin(), manager_load_.end(), 0);

  // Route each rating to the ratee's manager (one message per rating).
  for (const reputation::Rating& r : cycle_ratings) {
    if (r.ratee >= plugin_->size()) continue;
    ++traffic_.ratings_routed;
    ++manager_load_[manager_of(r.ratee)];
  }

  // The adjustment mathematics is shared with the centralised plugin, so
  // distributed execution is reputations-identical by construction.
  plugin_->update(cycle_ratings);

  // Protocol accounting from the detector hits: a flagged pair whose rater
  // lives under a different manager than the ratee costs one
  // social-information fetch (Mj -> Mi) plus one adjustment notification.
  for (const FlaggedPair& fp : plugin_->last_report().flagged) {
    if (manager_of(fp.rater) != manager_of(fp.ratee)) {
      ++traffic_.info_requests;
    } else {
      ++traffic_.local_hits;
    }
    ++traffic_.adjustments_applied;
  }

  total_traffic_.ratings_routed += traffic_.ratings_routed;
  total_traffic_.info_requests += traffic_.info_requests;
  total_traffic_.adjustments_applied += traffic_.adjustments_applied;
  total_traffic_.local_hits += traffic_.local_hits;
}

void ResourceManagerNetwork::reset() {
  plugin_->reset();
  traffic_ = ManagerTrafficReport{};
  total_traffic_ = ManagerTrafficReport{};
  std::fill(manager_load_.begin(), manager_load_.end(), 0);
}

}  // namespace st::core
