#pragma once
// Suspicious-collusion-behaviour detector — the B1-B4 patterns identified
// from the Overstock trace (Section 3) with the threshold logic of
// Section 4.3.
//
//   B1: high-frequency positive ratings across a *long* social distance
//       (low closeness).
//   B2: high-frequency positive ratings toward a *low-reputed* but
//       socially very close node.
//   B3: high-frequency positive ratings between nodes sharing *few*
//       interests.
//   B4: high-frequency *negative* ratings between nodes sharing *many*
//       interests (competitor bad-mouthing).
//
// A pair is investigated only when its per-interval rating count exceeds
// the frequency threshold max(count_floor, theta * F), where F is the
// system-average per-pair rating frequency of the interval — "SocialTrust
// uses theta*F (theta > 1) as the threshold to determine whether the
// rating frequency is high" (Section 4.1).

#include <cstdint>

#include "core/config.hpp"
#include "core/gaussian_filter.hpp"
#include "obs/obs.hpp"

namespace st::core {

/// Bitmask of matched suspicious behaviours.
enum class Behavior : std::uint8_t {
  kNone = 0,
  kB1 = 1U << 0U,
  kB2 = 1U << 1U,
  kB3 = 1U << 2U,
  kB4 = 1U << 3U,
};

constexpr Behavior operator|(Behavior a, Behavior b) noexcept {
  return static_cast<Behavior>(static_cast<std::uint8_t>(a) |
                               static_cast<std::uint8_t>(b));
}
constexpr Behavior operator&(Behavior a, Behavior b) noexcept {
  return static_cast<Behavior>(static_cast<std::uint8_t>(a) &
                               static_cast<std::uint8_t>(b));
}
constexpr bool any(Behavior b) noexcept {
  return b != Behavior::kNone;
}

/// Everything the detector needs to know about one directed rating pair
/// within one update interval.
struct PairEvidence {
  double positive_count = 0.0;   ///< t+(i,j) this interval
  double negative_count = 0.0;   ///< t-(i,j) this interval
  double closeness = 0.0;        ///< Omega_c(i,j)
  double similarity = 0.0;       ///< Omega_s(i,j)
  double ratee_reputation = 0.0; ///< normalised global reputation of j
  /// The rater's own closeness statistics (centre of its Gaussian); the
  /// adaptive closeness thresholds scale off this mean.
  CoefficientStats rater_closeness;
};

class BehaviorDetector {
 public:
  explicit BehaviorDetector(const SocialTrustConfig& config) noexcept;

  /// Effective high-frequency threshold for this interval given the
  /// system-average pair frequency F.
  double positive_threshold(double average_pair_frequency) const noexcept;
  double negative_threshold(double average_pair_frequency) const noexcept;

  /// Classifies one pair. `average_pair_frequency` is the interval's F.
  Behavior classify(const PairEvidence& evidence,
                    double average_pair_frequency) const noexcept;

 private:
  SocialTrustConfig config_;

  // Observability handles: every classify() call bumps pairs_checked_,
  // and each matched pattern bumps its flag counter — `detector.b1_flags`
  // … `detector.b4_flags` are the per-behaviour hit rates the evaluation
  // figures cannot show (process-wide relaxed-atomic counters, no-ops
  // while the obs layer is disabled; see docs/OBSERVABILITY.md).
  obs::Counter* pairs_checked_ = nullptr;
  obs::Counter* b1_flags_ = nullptr;
  obs::Counter* b2_flags_ = nullptr;
  obs::Counter* b3_flags_ = nullptr;
  obs::Counter* b4_flags_ = nullptr;
};

}  // namespace st::core
