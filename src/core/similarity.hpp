#pragma once
// Interest profiles and interest similarity Omega_s — Eq. (7) and the
// hardened, request-weighted Eq. (11).
//
//     Omega_s(i,j) = |Vi ∩ Vj| / min(|Vi|, |Vj|)               (Eq. 7)
//     Omega_s(i,j) = sum_l ws(i,l) * ws(j,l) / min(|Vi|, |Vj|) (Eq. 11)
// where ws(i,l) is the share of node i's resource requests that fall in
// category l. Per Section 4.4, falsifying the *declared* profile does not
// fool Eq. (11): requests on a deleted interest still reveal it, and a
// declared interest with no requests contributes nothing. We therefore
// evaluate Eq. (11) over the *effective* interest set — declared interests
// plus any category the node actually requested from.

#include <cstdint>
#include <span>
#include <vector>

#include "reputation/rating.hpp"

namespace st::core {

using reputation::InterestId;
using reputation::NodeId;

class InterestProfiles {
 public:
  /// Monotone change counter, mirroring graph::SocialGraph::Revision:
  /// bumps exactly when a node's declared set or request histogram actually
  /// changes, so similarity values witnessed against the revisions of both
  /// endpoints can be reused verbatim while those revisions hold.
  using Revision = std::uint64_t;

  /// `node_count` peers over `category_count` product/resource categories.
  InterestProfiles(std::size_t node_count, std::size_t category_count);

  std::size_t node_count() const noexcept { return declared_.size(); }
  std::size_t category_count() const noexcept { return categories_; }

  /// Replaces the declared interest set of `node` (the profile a user
  /// fills out). Duplicate/out-of-range categories are dropped.
  void set_interests(NodeId node, std::span<const InterestId> interests);

  void add_interest(NodeId node, InterestId interest);
  void remove_interest(NodeId node, InterestId interest);

  /// Declared interests, ascending.
  std::span<const InterestId> declared(NodeId node) const;

  /// Records `count` resource requests by `node` in `category` — the
  /// behavioural signal Eq. (11) weighs.
  void record_request(NodeId node, InterestId category, double count = 1.0);

  /// ws(node, category): share of the node's requests in that category
  /// (0 when the node made no requests).
  double request_weight(NodeId node, InterestId category) const;

  double total_requests(NodeId node) const;

  /// Effective interest set: declared ∪ requested-from categories.
  std::vector<InterestId> effective(NodeId node) const;

  /// Erases the node's request history (whitewashing support; the
  /// declared profile is left for the caller to re-declare).
  void clear_requests(NodeId node);

  /// Eq. (7) over declared sets. Returns 0 when either set is empty.
  double similarity(NodeId a, NodeId b) const;

  /// Behaviour-weighted similarity over effective interest sets, as a
  /// histogram intersection: sum_l min(ws(a,l), ws(b,l)). In [0, 1]; 1 for
  /// identical request distributions, 0 for disjoint ones. This keeps the
  /// falsification resistance Section 4.4 wants from Eq. (11) — declared
  /// interests with no requests contribute nothing, deleted interests with
  /// requests still count — while staying scale-comparable with Eq. (7)
  /// (the literal Eq. (11), available below, self-normalises to near zero
  /// even for identical twins: sum_l ws^2 / min(|V|) <= 1/|V|^2, so "low
  /// similarity" ceases to be an anomaly signal).
  double weighted_similarity(NodeId a, NodeId b) const;

  /// The literal Eq. (11): sum_l ws(a,l)*ws(b,l) / min(|Va|, |Vb|) over
  /// common effective interests. Kept for the ablation bench and tests.
  double weighted_similarity_eq11(NodeId a, NodeId b) const;

  /// Revision of `node`'s profile state (declared interests + request
  /// histogram). Every similarity variant between a and b is a pure
  /// function of the states witnessed by revision(a) and revision(b).
  Revision revision(NodeId node) const noexcept {
    return node < revisions_.size() ? revisions_[node] : 0;
  }

  /// Global epoch: bumps whenever any profile changes.
  Revision epoch() const noexcept { return epoch_; }

 private:
  void check_node(NodeId node) const;
  void bump(NodeId node);

  std::size_t categories_;
  std::vector<std::vector<InterestId>> declared_;        // sorted
  std::vector<std::vector<double>> request_counts_;      // dense per category
  std::vector<double> request_totals_;
  std::vector<Revision> revisions_;
  Revision epoch_ = 0;
};

}  // namespace st::core
