#pragma once
// Interest profiles and interest similarity Omega_s — Eq. (7) and the
// hardened, request-weighted Eq. (11).
//
//     Omega_s(i,j) = |Vi ∩ Vj| / min(|Vi|, |Vj|)               (Eq. 7)
//     Omega_s(i,j) = sum_l ws(i,l) * ws(j,l) / min(|Vi|, |Vj|) (Eq. 11)
// where ws(i,l) is the share of node i's resource requests that fall in
// category l. Per Section 4.4, falsifying the *declared* profile does not
// fool Eq. (11): requests on a deleted interest still reveal it, and a
// declared interest with no requests contributes nothing. We therefore
// evaluate Eq. (11) over the *effective* interest set — declared interests
// plus any category the node actually requested from.
//
// Storage layout (DESIGN.md §15, docs/ARCHITECTURE.md). Declared sets
// live in a flat CSR array (offsets + sorted interest ids) with the same
// copy-on-write delta overlay scheme as graph::SocialGraph: the first
// set-resizing mutation of a node copies its row into a private sorted
// overlay row, and a deterministic compaction (threshold-triggered, or
// explicit at begin_interval()) folds the overlay back into fresh flat
// arrays. The request histogram is one dense node-major matrix
// (node_count x category_count doubles) — record_request is a single
// indexed store, and every similarity pass reads two contiguous rows.
// Rebuilds are representation-only: no accessor result and no revision
// counter changes.

#include <cstdint>
#include <span>
#include <vector>

#include "reputation/rating.hpp"

namespace st::core {

using reputation::InterestId;
using reputation::NodeId;

class InterestProfiles {
 public:
  /// Monotone change counter, mirroring graph::SocialGraph::Revision:
  /// bumps exactly when a node's declared set or request histogram actually
  /// changes, so similarity values witnessed against the revisions of both
  /// endpoints can be reused verbatim while those revisions hold.
  using Revision = std::uint64_t;

  /// `node_count` peers over `category_count` product/resource categories.
  InterestProfiles(std::size_t node_count, std::size_t category_count);

  std::size_t node_count() const noexcept { return node_count_; }
  std::size_t category_count() const noexcept { return categories_; }

  /// Replaces the declared interest set of `node` (the profile a user
  /// fills out). Duplicate/out-of-range categories are dropped.
  void set_interests(NodeId node, std::span<const InterestId> interests);

  void add_interest(NodeId node, InterestId interest);
  void remove_interest(NodeId node, InterestId interest);

  /// Declared interests, ascending. Invalidated by any mutating method
  /// (a mutation may trigger a compaction that moves every row — same
  /// span-stability contract as SocialGraph::neighbors()).
  std::span<const InterestId> declared(NodeId node) const;

  /// Records `count` resource requests by `node` in `category` — the
  /// behavioural signal Eq. (11) weighs.
  void record_request(NodeId node, InterestId category, double count = 1.0);

  /// ws(node, category): share of the node's requests in that category
  /// (0 when the node made no requests).
  double request_weight(NodeId node, InterestId category) const;

  double total_requests(NodeId node) const;

  /// Effective interest set: declared ∪ requested-from categories.
  std::vector<InterestId> effective(NodeId node) const;

  /// Erases the node's request history (whitewashing support; the
  /// declared profile is left for the caller to re-declare).
  void clear_requests(NodeId node);

  /// Eq. (7) over declared sets. Returns 0 when either set is empty.
  double similarity(NodeId a, NodeId b) const;

  /// Behaviour-weighted similarity over effective interest sets, as a
  /// histogram intersection: sum_l min(ws(a,l), ws(b,l)). In [0, 1]; 1 for
  /// identical request distributions, 0 for disjoint ones. This keeps the
  /// falsification resistance Section 4.4 wants from Eq. (11) — declared
  /// interests with no requests contribute nothing, deleted interests with
  /// requests still count — while staying scale-comparable with Eq. (7)
  /// (the literal Eq. (11), available below, self-normalises to near zero
  /// even for identical twins: sum_l ws^2 / min(|V|) <= 1/|V|^2, so "low
  /// similarity" ceases to be an anomaly signal).
  double weighted_similarity(NodeId a, NodeId b) const;

  /// The literal Eq. (11): sum_l ws(a,l)*ws(b,l) / min(|Va|, |Vb|) over
  /// common effective interests. Kept for the ablation bench and tests.
  double weighted_similarity_eq11(NodeId a, NodeId b) const;

  /// Revision of `node`'s profile state (declared interests + request
  /// histogram). Every similarity variant between a and b is a pure
  /// function of the states witnessed by revision(a) and revision(b).
  Revision revision(NodeId node) const noexcept {
    return node < revisions_.size() ? revisions_[node] : 0;
  }

  /// Global epoch: bumps whenever any profile changes.
  Revision epoch() const noexcept { return epoch_; }

  /// Interval hook: compacts any pending declared-set overlay into fresh
  /// flat CSR arrays. Representation-only; invalidates outstanding
  /// declared() spans. Called by the Simulator alongside
  /// SocialGraph::begin_interval().
  void begin_interval();

  /// Compactions performed so far (tests, bench, docs).
  std::uint64_t rebuild_count() const noexcept { return rebuilds_; }

  /// Overlay entries + materialised overlay rows — what the rebuild
  /// threshold watches.
  std::size_t delta_mass() const noexcept {
    return overlay_entries_ + overlay_live_;
  }

  /// Same rebuild-threshold scheme as SocialGraph (see its doc comment).
  static constexpr std::size_t kRebuildMinDelta = 256;
  static constexpr std::size_t kRebuildFraction = 4;

 private:
  static constexpr std::uint32_t kNoOverlay = 0xFFFFFFFFU;

  struct Row {
    const InterestId* ids = nullptr;
    std::size_t size = 0;
  };
  Row row(NodeId node) const noexcept;

  /// Copies node's CSR row into a fresh overlay row and routes the node
  /// there. No-op if already routed.
  std::vector<InterestId>& materialize(NodeId node);

  void maybe_rebuild() {
    const std::size_t mass = delta_mass();
    if (mass >= kRebuildMinDelta &&
        mass * kRebuildFraction >= ids_.size() + node_count_) {
      rebuild();
    }
  }
  void rebuild();

  void check_node(NodeId node) const;
  void bump(NodeId node);

  std::size_t node_count_;
  std::size_t categories_;

  // Declared-set CSR: node's row is ids_[offsets_[node] ..
  // offsets_[node+1]), sorted ascending; overlay as in SocialGraph.
  std::vector<std::uint64_t> offsets_;
  std::vector<InterestId> ids_;
  std::vector<std::uint32_t> overlay_slot_;
  std::vector<std::vector<InterestId>> overlay_;
  std::size_t overlay_entries_ = 0;
  std::size_t overlay_live_ = 0;

  // Request histogram: one dense node-major matrix,
  // request_counts_[node * categories_ + category].
  std::vector<double> request_counts_;
  std::vector<double> request_totals_;

  std::vector<Revision> revisions_;
  Revision epoch_ = 0;
  std::uint64_t rebuilds_ = 0;
};

}  // namespace st::core
