#pragma once
// Distributed SocialTrust execution — the resource-manager layer of
// Section 4.3.
//
// "In a reputation system, one or a number of trustworthy node(s) function
// as resource manager(s). Each resource manager is responsible for
// collecting the ratings and calculating the global reputation of certain
// nodes." — ratings about node j route to j's manager Mj; when Mj flags a
// high-frequency rater ni whose social information it does not hold, it
// contacts ni's manager Mi, which makes the judgement and adjusts r(i,j).
//
// ResourceManagerNetwork partitions the node space over `manager_count`
// managers (static modulo assignment of this implementation; any
// deterministic map works), performs the exact SocialTrust adjustment
// (delegated to SocialTrustPlugin so centralised and distributed execution
// provably produce identical reputations), and *accounts* the distributed
// protocol: ratings routed per manager, cross-manager social-information
// fetches, adjustment notifications. The accounting feeds the overhead
// bench (messages vs manager count).

#include <cstdint>
#include <memory>
#include <vector>

#include "core/socialtrust.hpp"

namespace st::core {

/// Per-interval message accounting of the distributed execution.
struct ManagerTrafficReport {
  std::uint64_t ratings_routed = 0;      ///< rating deliveries to managers
  std::uint64_t info_requests = 0;       ///< Mj -> Mi social-info fetches
  std::uint64_t adjustments_applied = 0; ///< adjusted pair notifications
  std::uint64_t local_hits = 0;  ///< flagged pairs resolved within a manager
};

class ResourceManagerNetwork final : public reputation::ReputationSystem {
 public:
  /// Distributes SocialTrust over `manager_count` managers on top of
  /// `inner`. Managers are ids [0, manager_count); node v is managed by
  /// manager v % manager_count.
  ResourceManagerNetwork(std::unique_ptr<reputation::ReputationSystem> inner,
                         const graph::SocialGraph& graph,
                         const InterestProfiles& profiles,
                         SocialTrustConfig config, std::size_t manager_count);

  std::string_view name() const noexcept override { return name_; }
  std::size_t size() const noexcept override { return plugin_->size(); }
  void update(std::span<const reputation::Rating> cycle_ratings) override;
  double reputation(reputation::NodeId node) const override {
    return plugin_->reputation(node);
  }
  std::span<const double> reputations() const noexcept override {
    return plugin_->reputations();
  }
  void reset() override;
  void forget_node(reputation::NodeId node) override {
    plugin_->forget_node(node);
  }

  std::size_t manager_count() const noexcept { return manager_count_; }
  std::size_t manager_of(reputation::NodeId node) const noexcept {
    return node % manager_count_;
  }

  /// Traffic of the last update interval.
  const ManagerTrafficReport& last_traffic() const noexcept {
    return traffic_;
  }
  /// Cumulative traffic since construction/reset.
  const ManagerTrafficReport& total_traffic() const noexcept {
    return total_traffic_;
  }
  /// Ratings routed to each manager over the last interval (load skew).
  const std::vector<std::uint64_t>& manager_load() const noexcept {
    return manager_load_;
  }

  const AdjustmentReport& last_report() const noexcept {
    return plugin_->last_report();
  }

 private:
  std::unique_ptr<SocialTrustPlugin> plugin_;
  std::size_t manager_count_;
  std::string name_;
  ManagerTrafficReport traffic_;
  ManagerTrafficReport total_traffic_;
  std::vector<std::uint64_t> manager_load_;
};

}  // namespace st::core
