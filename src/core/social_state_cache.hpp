#pragma once
// SocialStateCache — persistent, revision-validated memoisation of the
// social signals the adjustment reads every update interval.
//
// The paper runs SocialTrust "after each reputation-update interval", but
// the social substrate it reads — relationships, interaction frequencies,
// interest profiles — evolves slowly relative to the rating stream. The
// plugin used to wipe its closeness memo at the top of every update() and
// re-run friend-of-friend sums and shortest-path BFS for every active
// pair. This cache instead survives across intervals and revalidates each
// entry against the per-node revision counters of SocialGraph /
// InterestProfiles: an entry is reused iff re-deriving it would read
// exactly the same state, so warm results are bit-for-bit identical to a
// cold recompute.
//
// Two layers of entries:
//
//   * structure entries — common-friend sets (witnessed by the structure
//     revisions of both endpoints) and BFS shortest paths. A cached path
//     is the lexicographically smallest shortest path (what ascending-
//     adjacency FIFO BFS returns — a graph-intrinsic value, not an
//     algorithm accident), so it is witnessed precisely: it can only
//     change if a brand-new adjacency appears somewhere (the graph's
//     edge-addition epoch — new edges can shorten distances or create
//     lex-smaller competitors) or if the structural state of a node ON
//     the path changes (edge removal / type change touching the path).
//     Removals and type churn elsewhere in the graph leave every cached
//     path exactly valid — the expensive hop-capped BFS is redone only
//     when its answer could actually differ.
//
//   * value entries — full Omega_c(i,j) and Omega_s(a,b). Each carries the
//     exact witness set of nodes whose state the computation read, with
//     the weakest sufficient revision kind per node:
//       adjacent Omega_c    -> (i, full): the edge record lives in i's row
//                              (structural mutation of (i,j) bumps both
//                              endpoints) and Eq. 2/10 reads only f(i,*).
//       friend-of-friend    -> (i, full), (j, structure), (k, full) per
//                              common friend k: Eq. 3 sums
//                              adjacent_closeness(i,k) and (k,j), and the
//                              common set itself only changes when the
//                              neighbour list of i or j does.
//       bottleneck          -> edge-addition-epoch gate (no new edge =>
//                              this is still THE lex-min shortest path,
//                              unless the path itself was touched) plus
//                              (p, full) for every path node except the
//                              sink, whose outgoing interactions Eq. 4
//                              never reads (and whose full revision also
//                              covers structural changes to path edges).
//       unreachable         -> edge-addition-epoch gate alone (removals
//                              never make a pair reachable).
//       similarity          -> (a, profile), (b, profile): every variant
//                              is a pure symmetric function of the two
//                              profiles, so entries use a canonical
//                              (min,max) key shared by both directions.
//     Witness sets larger than kMaxWitnesses fall back to a conservative
//     full-epoch stamp (valid only while *nothing* changed — the old
//     per-interval memo behaviour).
//
// Bit-identity: closeness values are recomputed through the exact same
// ClosenessModel branch code (fof_closeness / bottleneck_closeness operate
// on the memoised structure in the same order closeness() derives it), and
// a valid witness set proves the inputs are unchanged, so a warm hit
// returns the identical double a cold recompute would produce — at every
// thread count. Same-key races are benign for the same reason as the old
// memo: both racers compute the same (value, validity) from the frozen
// graph and the duplicate store is idempotent.
//
// Concurrency mirrors the retired ShardedClosenessCache: the key space is
// striped over kShards independently-locked shards and values are computed
// outside the shard lock. Nested lookups (closeness -> common set / path)
// take at most one shard lock at a time, so there is no lock ordering to
// get wrong.
//
// Observability: per-instance relaxed atomic counters (always on; the
// bench reads them to prove the hit rate) plus process-wide obs counters
// `social_cache.hits` / `.misses` / `.invalidations` /
// `.structure_hits` / `.structure_misses` / `.evictions`
// (see docs/OBSERVABILITY.md).
//
// Dirty tracking (opt-in, DESIGN.md §14): with enable_dirty_tracking()
// the cache answers the plugin's "which value keys went dirty since I
// last asked?" question so the dirty-pair scheduler never re-derives
// witness logic. Two mechanisms compose into that answer:
//   * erase logs — every removal of a closeness/similarity entry
//     (eviction sweep, invalidate_node, clear, stale replacement at
//     lookup) appends the key to a per-shard log, so a carried value can
//     never go silently stale just because its cache entry vanished
//     before the state changed;
//   * witness-indexed revalidation sweep — collect_dirty() first diffs
//     the per-node revision counters against its previous snapshot (an
//     O(n) scan of plain integers, skipped entirely while the global
//     epoch holds still), then revalidates only the entries that
//     actually witness a changed node, via per-shard (witness node, key)
//     ref lists appended at store time. Epoch-gated entries (bottleneck /
//     unreachable / witness-overflow) live on a separate small per-shard
//     key list walked each sweep. Ref lists carry stale refs (erased or
//     re-branched entries) harmlessly — a ref is dropped when its key no
//     longer resolves or no longer witnesses the node — and are rebuilt
//     from the live entries when staleness outgrows them. The sweep is
//     therefore O(nodes + refs-of-changed-nodes), not O(entries), and a
//     no-churn interval costs O(1).

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/closeness.hpp"
#include "core/similarity.hpp"
#include "graph/social_graph.hpp"
#include "obs/obs.hpp"
#include "util/thread_annotations.hpp"

namespace st::core {

class SocialStateCache {
 public:
  using NodeId = graph::NodeId;
  using Revision = graph::SocialGraph::Revision;

  SocialStateCache();

  /// Cached Omega_c(i,j), revalidating against the graph's revisions and
  /// recomputing (and re-memoising) on miss. `max_hops` must be the same
  /// for every call on one cache instance — it is not part of the key.
  double closeness(const ClosenessModel& model, const graph::SocialGraph& g,
                   NodeId i, NodeId j, std::size_t max_hops = 6);

  /// Cached Omega_s(a,b) — weighted_similarity() when `weighted`, the
  /// declared-set Eq. 7 otherwise. The flag selects the computation, not
  /// the key, so one cache instance must not mix both variants (the
  /// plugin's config fixes the choice for its lifetime).
  double similarity(const InterestProfiles& profiles, NodeId a, NodeId b,
                    bool weighted);

  /// Interval tick + generation-based eviction sweep. The plugin calls
  /// this at the top of every update(); it advances the cache's
  /// generation counter and, when `evict_after > 0`, drops every
  /// *value-layer* entry (closeness + similarity) that no lookup has
  /// touched for more than `evict_after` consecutive intervals.
  /// `evict_after == 0` (the default config) disables the sweep
  /// entirely. Structure entries are exempt: they are the expensive
  /// BFS/set-intersection layer whose persistence is the cache's whole
  /// point, and they carry no per-interval touch stamp.
  ///
  /// Bit-identity is unaffected by construction: eviction only ever
  /// *removes* entries, and a removed entry is recomputed through the
  /// exact same code path a cold miss takes, producing the identical
  /// double (see the revalidation contract above). The sweep trades
  /// recompute time for bounded memory on long runs, never results.
  void begin_interval(std::size_t evict_after);

  /// Erases every entry whose key or witness set mentions `node` — the
  /// whitewashing hook. Epoch-gated entries are untouched: they only stay
  /// valid while the corresponding graph epoch holds, and any actual state
  /// change (e.g. SocialGraph::clear_node) bumps it.
  void invalidate_node(NodeId node);

  /// Drops everything (plugin reset). With dirty tracking enabled every
  /// dropped value key is logged, so a consumer that carried values
  /// derived from the dropped entries re-derives them next interval.
  void clear();

  /// Value-layer keys invalidated since the previous collect_dirty()
  /// call, sorted ascending and deduplicated. Closeness keys are
  /// directional pack(i, j); similarity keys are canonical
  /// pack(min, max) — both sides of a similarity key are affected.
  struct DirtyKeys {
    std::vector<std::uint64_t> closeness;
    std::vector<std::uint64_t> similarity;
  };

  /// Opts this instance into dirty tracking. Must be called before the
  /// first lookup (the plugin does so at construction); without it the
  /// erase logs stay empty and collect_dirty() returns nothing.
  void enable_dirty_tracking() noexcept { tracking_ = true; }
  bool dirty_tracking() const noexcept { return tracking_; }

  /// Drains the per-shard erase logs and — only when the corresponding
  /// epoch moved since the last call — sweeps the surviving value
  /// entries, erasing and reporting the ones whose witnesses no longer
  /// hold. Afterwards every remaining value entry is valid against the
  /// current graph/profiles, so a key absent from the result is
  /// guaranteed to re-derive to its carried value. Call from the
  /// coordinator between parallel regions (it takes each shard lock).
  DirtyKeys collect_dirty(const graph::SocialGraph& g,
                          const InterestProfiles& profiles);

  /// The changed-node view one revision scan produces: which sweep gates
  /// opened and, per node, whether its (full / profile) revision moved
  /// since the scan before. The bitmaps are meaningful only while the
  /// matching sweep flag is set. Computed once per interval by a
  /// RevisionTracker and shared by every shard-partitioned cache, so S
  /// caches pay one O(nodes) scan between them instead of S.
  struct RevisionDelta {
    bool sweep_closeness = false;
    bool sweep_similarity = false;
    std::vector<std::uint8_t> graph_changed;    ///< per graph node
    std::vector<std::uint8_t> profile_changed;  ///< per profile node
  };

  /// Owns the epoch watermarks and per-node revision snapshots that turn
  /// "current graph/profile state" into a RevisionDelta. A cache embeds
  /// one for the single-instance collect_dirty() below; a coordinator
  /// that partitions its pair space over several caches (the sharded
  /// aggregator, DESIGN.md §16) owns one tracker and hands the same
  /// delta to every per-shard collect_dirty(g, profiles, delta) call —
  /// keeping each shard's sweep O(refs of changed nodes) within that
  /// shard. Coordinator-only, between parallel regions.
  class RevisionTracker {
   public:
    const RevisionDelta& collect(const graph::SocialGraph& g,
                                 const InterestProfiles& profiles);

   private:
    Revision last_graph_epoch_ = ~Revision{0};
    Revision last_profile_epoch_ = ~Revision{0};
    std::vector<Revision> last_node_revs_;
    std::vector<Revision> last_profile_revs_;
    RevisionDelta delta_;
  };

  /// As collect_dirty(g, profiles) but driven by an externally computed
  /// RevisionDelta instead of this instance's own tracker — the
  /// shard-partitioned form. The caller's tracker must be collected
  /// exactly once per interval, against the same graph/profiles every
  /// cache in the group reads.
  DirtyKeys collect_dirty(const graph::SocialGraph& g,
                          const InterestProfiles& profiles,
                          const RevisionDelta& delta);

  /// Packed directional pair key — public so the plugin's dirty-pair
  /// worklist speaks the same key language as collect_dirty().
  static std::uint64_t pack(NodeId a, NodeId b) noexcept {
    return (static_cast<std::uint64_t>(a) << 32U) | b;
  }
  static NodeId key_first(std::uint64_t key) noexcept {
    return static_cast<NodeId>(key >> 32U);
  }
  static NodeId key_second(std::uint64_t key) noexcept {
    return static_cast<NodeId>(key & 0xFFFFFFFFU);
  }

  /// Value entries across shards (closeness + similarity). Diagnostics
  /// and tests only; takes every shard lock.
  std::size_t size() const;

  /// Structure entries across shards (common sets + paths).
  std::size_t structure_size() const;

  /// Monotone per-instance totals. Hits/misses count value-level lookups
  /// (closeness + similarity); structure_* count the nested common-set and
  /// path lookups; invalidations counts entries dropped because a lookup
  /// found them stale plus entries erased by invalidate_node; evictions
  /// counts value entries dropped by the begin_interval() sweep.
  struct StatsSnapshot {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t structure_hits = 0;
    std::uint64_t structure_misses = 0;
    std::uint64_t evictions = 0;
  };
  StatsSnapshot stats() const noexcept;

  /// Shard count; a power of two (shard_of masks with kShards - 1).
  static constexpr std::size_t kShards = 64;

  /// Largest exact witness set a value entry keeps before degrading to a
  /// conservative full-epoch stamp. Bottleneck paths are capped by
  /// max_hops (7 nodes at the default 6), so only friend-of-friend
  /// entries with many common friends ever overflow.
  static constexpr std::size_t kMaxWitnesses = 16;

 private:
  /// One node whose state a value entry's computation read, at the
  /// weakest revision kind that still proves "unchanged".
  struct Witness {
    NodeId node = 0;
    bool structure = false;  ///< match structure_revision vs revision
    Revision rev = 0;
  };

  static constexpr Revision kNoGate = ~Revision{0};

  /// Validity stamp of a closeness entry: optional epoch gates plus the
  /// witness list. Valid iff every set gate equals the graph's current
  /// epoch and every witness matches its node's current revision.
  struct Validity {
    Revision addition_epoch = kNoGate;  ///< gate on g.edge_addition_epoch()
    Revision full_epoch = kNoGate;      ///< gate on g.epoch()
    std::vector<Witness> witnesses;

    bool valid(const graph::SocialGraph& g) const noexcept;
    bool mentions(NodeId node) const noexcept;
  };

  struct ClosenessEntry {
    double value = 0.0;
    Validity validity;
    std::uint64_t last_touch = 0;  ///< generation of the last hit/store
  };

  /// Similarity entries witness exactly the two profiles they read.
  struct SimilarityEntry {
    double value = 0.0;
    Revision rev_lo = 0;  ///< profile revision of min(a,b)
    Revision rev_hi = 0;  ///< profile revision of max(a,b)
    std::uint64_t last_touch = 0;  ///< generation of the last hit/store
  };

  /// Memoised common-friend set, canonical (min,max) key (symmetric).
  struct CommonEntry {
    std::vector<NodeId> common;
    Revision srev_lo = 0;  ///< structure revision of min(a,b)
    Revision srev_hi = 0;  ///< structure revision of max(a,b)
  };

  /// Memoised shortest path, directional key (a path i->j is not a path
  /// j->i). An empty node list records "unreachable within max_hops" —
  /// negative results are exactly as expensive to rediscover. Valid while
  /// the edge-addition epoch holds and every non-sink path node's
  /// structural state is untouched (see the structure-entry notes above);
  /// an unreachable record needs only the addition gate.
  struct PathEntry {
    std::vector<NodeId> path;
    Revision addition_epoch = 0;
    /// structure_revision of path[0..len-2] at compute time, same order.
    std::vector<Revision> node_srevs;
  };

  /// One stripe: its own mutex plus the slices of all four maps whose
  /// keys hash here. Striping trades memory for lock granularity, exactly
  /// as the retired per-interval memo did. The dirty_* vectors are the
  /// erase logs of the tracking contract above, guarded by the same
  /// mutex and drained (then sorted) by collect_dirty().
  struct Shard {
    mutable util::Mutex mutex;
    std::unordered_map<std::uint64_t, ClosenessEntry> closeness
        ST_GUARDED_BY(mutex);
    std::unordered_map<std::uint64_t, SimilarityEntry> similarity
        ST_GUARDED_BY(mutex);
    std::unordered_map<std::uint64_t, CommonEntry> common_sets
        ST_GUARDED_BY(mutex);
    std::unordered_map<std::uint64_t, PathEntry> paths
        ST_GUARDED_BY(mutex);
    std::vector<std::uint64_t> dirty_closeness ST_GUARDED_BY(mutex);
    std::vector<std::uint64_t> dirty_similarity ST_GUARDED_BY(mutex);
    // Witness index of the tracking contract (kept only while tracking_):
    // one (witness node, key) ref per witness of each stored closeness
    // entry, one (endpoint, key) ref per side of each similarity entry,
    // and the keys of epoch-gated closeness entries. Append-only between
    // sweeps; collect_dirty() prunes refs it visits and compacts
    // wholesale when stale refs dominate.
    std::vector<std::pair<NodeId, std::uint64_t>> witness_refs
        ST_GUARDED_BY(mutex);
    std::vector<std::pair<NodeId, std::uint64_t>> sim_refs
        ST_GUARDED_BY(mutex);
    std::vector<std::uint64_t> gated_closeness ST_GUARDED_BY(mutex);
  };

  /// Fibonacci-hash mix before the mask so consecutive rater ids — the
  /// common case, the pair list being rater-sorted — spread across shards.
  static std::size_t shard_of(std::uint64_t key) noexcept {
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ULL) >> 32U) &
           (kShards - 1);
  }

  /// Computes Omega_c(i,j) through the memoised structure layer, filling
  /// `out` with the witness set / epoch gates the computation depends on.
  double compute_closeness(const ClosenessModel& model,
                           const graph::SocialGraph& g, NodeId i, NodeId j,
                           std::size_t max_hops, Validity& out);

  /// Common-friend set of (i,j) via the structure layer (copied out of the
  /// shard so no lock is held during downstream work).
  std::vector<NodeId> common_cached(const graph::SocialGraph& g, NodeId i,
                                    NodeId j);

  /// Shortest path i -> j via the structure layer; empty = unreachable.
  std::vector<NodeId> path_cached(const graph::SocialGraph& g, NodeId i,
                                  NodeId j, std::size_t max_hops);

  /// Rebuild a shard's closeness witness/gate index (resp. similarity
  /// endpoint index) from its live entries once stale refs dominate.
  /// Caller holds the shard lock.
  static void compact_closeness_index(Shard& shard)
      ST_REQUIRES(shard.mutex);
  static void compact_similarity_index(Shard& shard)
      ST_REQUIRES(shard.mutex);

  std::unique_ptr<Shard[]> shards_;

  /// Dirty tracking opted in? Set once, before any concurrent use (the
  /// plugin enables it at construction), so a plain bool suffices.
  bool tracking_ = false;

  /// Watermarks + snapshots backing the single-instance collect_dirty()
  /// (the kNoGate-equivalent sentinels inside the tracker force a
  /// trivially cheap sweep on the first collect). Coordinator-only,
  /// between parallel regions; unused by the delta-driven overload.
  RevisionTracker tracker_;

  /// Update-interval counter driving the eviction sweep; bumped by
  /// begin_interval(). Relaxed: begin_interval runs on the coordinator
  /// between parallel regions, and a touch stamp that is off by one
  /// interval only shifts *when* an entry is recomputed, never what the
  /// recompute produces.
  std::atomic<std::uint64_t> generation_{0};

  // Per-instance totals (see StatsSnapshot). Relaxed: they order nothing;
  // observation-only, never fed back into cached values.
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> structure_hits_{0};
  std::atomic<std::uint64_t> structure_misses_{0};
  std::atomic<std::uint64_t> evictions_{0};

  // Process-wide observability handles, resolved once at construction;
  // no-ops while the obs layer is disabled.
  obs::Counter* obs_hits_ = nullptr;
  obs::Counter* obs_misses_ = nullptr;
  obs::Counter* obs_invalidations_ = nullptr;
  obs::Counter* obs_structure_hits_ = nullptr;
  obs::Counter* obs_structure_misses_ = nullptr;
  obs::Counter* obs_evictions_ = nullptr;
};

}  // namespace st::core
