#pragma once
// SocialTrust configuration: every threshold and variant knob from
// Section 4 of the paper in one aggregate, so experiments and ablations can
// be expressed as config deltas.

#include <cstddef>
#include <cstdint>

namespace st::core {

/// Which deviation terms enter the Gaussian exponent (Eqs. 6, 8, 9).
enum class AdjustmentComponents : std::uint8_t {
  kClosenessOnly,   ///< Eq. (6): social closeness deviation only
  kSimilarityOnly,  ///< Eq. (8): interest similarity deviation only
  kCombined,        ///< Eq. (9): both deviations summed (paper default)
};

/// How the Gaussian width c is derived from the baseline population.
/// Eq. (6) writes c = |max - min|, but the range statistic is fragile:
/// a single moderately-large closeness among the rater's other ratees
/// stretches c and caps the attenuation of a true outlier (the weight can
/// never drop below ~exp(-1/2) relative to the range). Using the standard
/// deviation of the same population gives the near-zero corner weights the
/// paper's Figure 6 depicts and its results require. kStdDev is therefore
/// the default; kRange implements the literal equation and is compared in
/// the ablation bench.
enum class GaussianWidth : std::uint8_t {
  kRange,   ///< c = |max - min| (Eq. 6 as printed)
  kStdDev,  ///< c = stddev of the baseline population (default)
};

/// Where the Gaussian centre/width statistics come from. The paper allows
/// either "the average social closeness of n_i to the nodes that n_i has
/// rated" or "the average Omega of a pair of transaction peers in the
/// system based on the empirical result" (Sections 4.1-4.2).
enum class BaselineSource : std::uint8_t {
  kPerRater,    ///< per-rater mean/min/max over the rater's rating history
  kSystemWide,  ///< global empirical mean/min/max over all rating pairs
  /// Both baselines, taking the stronger attenuation (minimum weight).
  /// The per-rater baseline alone is self-poisoned by colluders with many
  /// conspirators: a rater whose history is mostly colluding pairs makes
  /// "very close + zero-similarity" look normal for itself. The
  /// system-wide baseline alone is blind to legitimate per-rater
  /// idiosyncrasy. Taking the minimum weight is robust to both; this is
  /// the default.
  kHybrid,
};

/// How update() schedules the per-pair coefficient work across intervals
/// (DESIGN.md §14).
enum class UpdateSchedule : std::uint8_t {
  /// Recompute closeness/similarity for every active pair each interval.
  /// This is the exact-by-construction oracle the differential test
  /// harness compares the dirty scheduler against.
  kFullWalk,
  /// Carry clean pairs' coefficients and per-rater leave-one-out
  /// aggregates forward across intervals and recompute only the pairs
  /// whose cached social state was invalidated since the last interval.
  /// Bit-identical to kFullWalk at every thread count (the carried values
  /// are exactly what a recompute would return while their revision
  /// witnesses hold); only the cost differs. Default.
  kDirtyPairs,
};

/// How the update interval's aggregation work is organised (DESIGN.md §16).
enum class AggregationMode : std::uint8_t {
  /// One monolithic pipeline over the global pair list — the paper's
  /// single-process recompute, and the bit-exact oracle the sharded mode
  /// is differentially gated against.
  kCentralized,
  /// N cooperating partitions: each shard owns its raters' pair slots and
  /// runs the shard-local passes independently; cross-shard quantities
  /// (system baselines, average frequency, remote reputations) move over
  /// a deterministic boundary-exchange schedule (src/shard/).
  kSharded,
};

/// How sharded aggregation moves boundary summaries between shards.
enum class ExchangeSchedule : std::uint8_t {
  /// All-gather every shard summary each interval, then replay the
  /// centralized reductions over the merged canonical pair order.
  /// Bit-identical to AggregationMode::kCentralized at every shard and
  /// thread count (the differential gate in
  /// tests/sharded_aggregation_test.cpp pins this).
  kSynchronous,
  /// Seeded pairwise gossip rounds with known-set flooding: each round
  /// pairs shards by a seed-derived permutation and the pair union their
  /// known summary sets. System baselines are then rebuilt per shard
  /// from fixed-size quantile sketches, so results converge to the
  /// centralized ones within a small residual instead of matching
  /// bit-for-bit. Still fully deterministic for a fixed seed.
  kGossip,
};

struct SocialTrustConfig {
  // --- Gaussian filter (Eqs. 5-9) ---
  /// Peak height alpha; paper Section 5.1 sets alpha = 1.
  double alpha = 1.0;

  // --- Frequency thresholds (Section 4.3) ---
  /// Scaling factor theta > 1 over the system average rating frequency F:
  /// a pair is "high frequency" when it exceeds theta * F.
  double theta = 2.0;
  /// Absolute floors for the positive/negative per-pair per-cycle counts
  /// (T+_t and T-_t). The effective threshold is
  /// max(floor, theta * F) so tiny systems don't flag everything.
  double positive_count_floor = 3.0;
  double negative_count_floor = 3.0;

  // --- Reputation / closeness / similarity thresholds (Section 4.3) ---
  /// T_R: a ratee below this (normalised) reputation is "low-reputed" (B2).
  double low_reputation = 0.01;
  /// T_ch / T_cl: high/low closeness cut points, expressed as multiples of
  /// the rater's own mean closeness (adaptive, since closeness is not
  /// normalised across raters).
  double closeness_high_factor = 2.0;
  double closeness_low_factor = 0.5;
  /// T_sh / T_sl: absolute interest-similarity cut points in [0, 1].
  /// Defaults follow the Overstock empirical values quoted in Section 4.2
  /// (average pair similarity 0.423, minimum 0.13).
  double similarity_high = 0.7;
  double similarity_low = 0.45;

  // --- Variant selection ---
  AdjustmentComponents components = AdjustmentComponents::kCombined;
  BaselineSource baseline = BaselineSource::kHybrid;
  GaussianWidth width = GaussianWidth::kStdDev;
  /// When true, only ratings from pairs flagged by the B1-B4 detector are
  /// re-weighted (paper behaviour). When false the Gaussian applies to all
  /// ratings (ablation).
  bool gate_on_detector = true;
  /// Use the relationship-weighted closeness of Eq. (10) instead of the
  /// plain count of Eq. (2) (Section 4.4 hardening).
  bool weighted_relationships = true;
  /// Use the request-weighted interest similarity of Eq. (11) instead of
  /// the set overlap of Eq. (7) (Section 4.4 hardening).
  bool weighted_interests = true;
  /// Relationship scaling weight lambda in [0.5, 1] of Eq. (10).
  double lambda = 0.8;

  // --- Execution ---
  /// Worker threads for the per-interval adjustment passes (closeness/
  /// similarity baseline collection, per-rater leave-one-out aggregates,
  /// detect-and-adjust). 1 = serial (default), 0 = hardware concurrency,
  /// n > 1 = a pool of n workers. The result is bit-for-bit identical for
  /// every value: work is split into fixed-size pair blocks and reduced in
  /// block-index order regardless of the worker count.
  std::size_t threads = 1;

  /// Per-pair work scheduling across update intervals. kDirtyPairs (the
  /// default) maintains a persistent dirty-pair worklist — pairs with new
  /// ratings plus pairs whose cached closeness/similarity witnesses were
  /// invalidated by graph/profile revision bumps — and carries every
  /// clean pair forward; kFullWalk recomputes every active pair and
  /// serves as the differential-test oracle. Outputs are bit-identical
  /// either way (tests/incremental_state_test.cpp pins this).
  UpdateSchedule schedule = UpdateSchedule::kDirtyPairs;

  /// Aggregation topology of the update interval. kCentralized (default)
  /// is the monolithic oracle pipeline; kSharded partitions raters over
  /// `shards` cooperating partitions with a deterministic boundary
  /// exchange (src/shard/, DESIGN.md §16).
  AggregationMode aggregation = AggregationMode::kCentralized;

  /// Shard count for AggregationMode::kSharded (capped at 64 — the
  /// exchange tracks known-summary sets as 64-bit masks). Shards map onto
  /// the plugin's worker pool; results are bit-identical (synchronous
  /// exchange) or epsilon-close (gossip) at every shard count.
  std::size_t shards = 4;

  /// Seed of the partitioner's interned-ID hash and of the gossip round
  /// pairings. Partition assignment depends only on (node id, seed), so
  /// it is stable under node churn.
  std::uint64_t shard_seed = 0x5EED5A17ULL;

  /// Boundary-exchange schedule for kSharded (see ExchangeSchedule).
  ExchangeSchedule exchange = ExchangeSchedule::kSynchronous;

  /// Gossip round budget: 0 (default) runs the seeded schedule until
  /// every shard knows every summary (flooding converges in O(log S)
  /// expected rounds; hard-capped at 4*shards + 8); n > 0 stops after n
  /// rounds even if dissemination is incomplete — shards then fall back
  /// to their last known values for the missing summaries.
  std::size_t gossip_rounds = 0;

  /// Size of the per-shard quantile sketch a gossip summary carries (per
  /// coefficient). Shards with at most this many active pairs publish
  /// their raw coefficient values, making the merged baselines exact;
  /// larger shards publish evenly spaced order statistics, bounding the
  /// summary at a fixed byte size and the baseline residual at O(1/points).
  std::size_t gossip_summary_points = 64;

  /// Generation-based eviction for the social-state cache's value layer
  /// (closeness/similarity memos). 0 (default) = never evict; n > 0 =
  /// at the top of each update interval, drop value entries no lookup
  /// has touched for more than n consecutive intervals. Structure
  /// entries (common-friend sets, BFS paths) are never swept. Purely a
  /// memory/recompute trade on long runs: an evicted entry is recomputed
  /// through the identical code path, so results are bit-for-bit
  /// unchanged at any setting.
  std::size_t cache_evict_intervals = 0;
};

}  // namespace st::core
