#pragma once
// SocialTrustPlugin — the paper's contribution, as a wrapper around any
// ReputationSystem (Section 4).
//
// On every reputation-update interval the plugin:
//   1. tallies per-pair positive/negative rating counts (t+, t-),
//   2. computes each active rater's social closeness Omega_c and interest
//      similarity Omega_s to the nodes it has rated (cumulative history),
//   3. runs the B1-B4 detector on every high-frequency pair,
//   4. rescales flagged ratings with the Gaussian filter (Eqs. 6/8/9),
//   5. hands the adjusted rating stream to the wrapped system.
//
// The plugin is itself a ReputationSystem, so "EigenTrust + SocialTrust"
// and "eBay + SocialTrust" are literally `SocialTrustPlugin(EigenTrust)` /
// `SocialTrustPlugin(EbayReputation)` — the construction the evaluation
// section compares.
//
// Parallel execution: with SocialTrustConfig::threads != 1 the three
// per-pair passes of update() (baseline coefficient collection, per-rater
// leave-one-out aggregates, detect-and-adjust) fan across a ThreadPool in
// fixed-size blocks of the pair list sorted by (rater, ratee). Per-block
// partial results (report counters, weight sum, flagged pairs) are reduced
// in block-index order, and block boundaries depend only on the pair count
// — never on the worker count — so the outcome is bit-for-bit identical
// for every `threads` value, serial included. See DESIGN.md, "Parallel
// update interval".
//
// Incremental social state: closeness and similarity lookups go through a
// persistent SocialStateCache that survives across update intervals and
// revalidates entries against the per-node revision counters of the graph
// and profiles — an entry is reused iff re-deriving it would read the same
// state, so warm results stay bit-identical to a cold recompute while the
// expensive BFS / friend-of-friend work is only redone for pairs whose
// social neighbourhood actually changed (DESIGN.md §13).
//
// Dirty-pair scheduling: with SocialTrustConfig::schedule == kDirtyPairs
// (the default) the interval is O(changed), not O(all pairs). Every
// cumulative (rater, ratee) pair owns a stable dense *slot* id (assigned
// when the pair first appears in rated_history_, never reused), and the
// per-pair closeness/similarity coefficients and per-rater leave-one-out
// aggregates persist across intervals in slot-indexed arrays. Each
// interval the plugin asks the cache which value keys went dirty since
// the last interval (collect_dirty: erase logs + epoch-gated witness
// sweep) and marks only those slots invalid; every clean pair carries
// its coefficients forward with one array read — no hashing, no sort
// (the canonical pair order falls out of walking raters ascending and
// their sorted histories), and no sharded-cache traffic. Detection, the
// robust system-wide baselines and the Gaussian adjustment still run
// over *all* active pairs from the (identical) coefficient arrays, so
// the output is bit-identical to schedule == kFullWalk at every thread
// count — the property the differential harness in
// tests/incremental_state_test.cpp and tests/dirty_pair_property_test.cpp
// pins down. See DESIGN.md §14.
//
// Observability: when the st::obs layer is enabled, update() times its
// three stages (collect / leave-one-out / adjust), tallies pair and
// rating counters, and emits one "socialtrust.update" interval event per
// call. Instrumentation is observation-only — it never feeds back into
// the adjustment, so enabling it preserves the bit-identity contract
// above (DESIGN.md §12, docs/OBSERVABILITY.md).

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/closeness.hpp"
#include "core/config.hpp"
#include "core/detector.hpp"
#include "core/similarity.hpp"
#include "core/social_state_cache.hpp"
#include "obs/obs.hpp"
#include "reputation/ledger.hpp"
#include "reputation/reputation_system.hpp"
#include "util/thread_pool.hpp"

namespace st::shard {
class ShardedAggregator;  // src/shard/sharded_aggregator.hpp
struct ShardStats;
}  // namespace st::shard

namespace st::core {

/// One detector hit: the pair, what it matched, and the applied weight.
struct FlaggedPair {
  reputation::NodeId rater = 0;
  reputation::NodeId ratee = 0;
  Behavior behavior = Behavior::kNone;
  double weight = 1.0;
};

/// Diagnostics for one update interval (inspection + tests + benches).
struct AdjustmentReport {
  std::size_t pairs_total = 0;       ///< active rating pairs this interval
  std::size_t pairs_flagged = 0;     ///< pairs matching any of B1-B4
  std::size_t ratings_adjusted = 0;  ///< individual ratings rescaled
  std::size_t b1 = 0, b2 = 0, b3 = 0, b4 = 0;  ///< per-behaviour pair counts
  double mean_weight = 1.0;  ///< mean Gaussian weight over adjusted ratings
  std::vector<FlaggedPair> flagged;  ///< every detector hit this interval
};

class SocialTrustPlugin final : public reputation::ReputationSystem {
 public:
  /// Wraps `inner`. The social graph and interest profiles are shared,
  /// caller-owned state (the simulator mutates them as peers interact);
  /// the plugin only reads them.
  SocialTrustPlugin(std::unique_ptr<reputation::ReputationSystem> inner,
                    const graph::SocialGraph& graph,
                    const InterestProfiles& profiles,
                    SocialTrustConfig config = {});

  /// Out-of-line: sharded_ points at an incomplete type here.
  ~SocialTrustPlugin() override;

  std::string_view name() const noexcept override { return name_; }
  std::size_t size() const noexcept override { return inner_->size(); }
  void update(std::span<const reputation::Rating> cycle_ratings) override;
  double reputation(reputation::NodeId node) const override {
    return inner_->reputation(node);
  }
  std::span<const double> reputations() const noexcept override {
    return inner_->reputations();
  }
  void reset() override;
  void forget_node(reputation::NodeId node) override;

  const AdjustmentReport& last_report() const noexcept { return report_; }
  const SocialTrustConfig& config() const noexcept { return config_; }
  reputation::ReputationSystem& inner() noexcept { return *inner_; }

  /// The adjusted rating stream of the last update (tests/diagnostics).
  std::span<const reputation::Rating> last_adjusted() const noexcept {
    return adjusted_;
  }

  /// Worker count the update interval actually runs with (the config knob
  /// with 0 resolved to hardware concurrency).
  std::size_t effective_threads() const noexcept;

  /// What the dirty-pair scheduler did in the last update() — cost-side
  /// diagnostics only; never part of the bit-identity contract (the
  /// differential tests compare AdjustmentReport, which deliberately
  /// excludes these). Under kFullWalk every active pair counts as dirty.
  struct DirtyStats {
    std::size_t pairs_dirty = 0;    ///< pairs recomputed through the cache
    std::size_t pairs_carried = 0;  ///< pairs served from carried state
    std::size_t raters_rebuilt = 0;  ///< LOO aggregates rebuilt
    std::size_t raters_carried = 0;  ///< LOO aggregates carried forward
    double scan_us = 0.0;  ///< collect_dirty + worklist application time
  };
  const DirtyStats& last_dirty_stats() const noexcept { return dirty_stats_; }

  /// Last interval's sharded-pipeline diagnostics (exchange rounds,
  /// boundary bytes, per-shard pair counts, baseline residual) — null
  /// while aggregation == kCentralized or before the first update().
  const shard::ShardStats* last_shard_stats() const noexcept;

  /// The persistent social-state cache (tests, benches, diagnostics).
  /// Mutable access is deliberate: dropping it (`social_cache().clear()`)
  /// must never change update() output, only its cost — that is the
  /// cold-vs-warm property the incremental tests pin down.
  SocialStateCache& social_cache() const noexcept { return social_cache_; }

  /// Pair-block grain of the parallel passes. A fixed constant — not a
  /// function of the worker count — so the block reduction tree, and with
  /// it every floating-point sum, is identical for every `threads` value.
  static constexpr std::size_t kPairBlock = 128;

  /// Multiset aggregate supporting O(1) leave-one-out statistics: tracking
  /// the two smallest and two largest values lets us remove any single
  /// value and still know the min/max of the rest. The paper centres each
  /// rater's Gaussian on its closeness/similarity "to *other* nodes it has
  /// rated" (Section 4.1), i.e. excluding the pair under evaluation —
  /// without the exclusion a lone extreme pair would stretch the width
  /// |max - min| around itself and cap its own attenuation at exp(-1/2).
  struct LooAggregate {
    std::size_t n = 0;
    double sum = 0.0;
    double sum_sq = 0.0;
    double min1 = 0.0, min2 = 0.0;  // smallest, second smallest
    double max1 = 0.0, max2 = 0.0;  // largest, second largest

    void add(double v) noexcept;
    /// Stats of the multiset with one instance of `v` removed. Returns
    /// false when nothing remains (caller falls back to system stats).
    bool without(double v, CoefficientStats& out) const noexcept;
    /// Stats of the full multiset.
    CoefficientStats full() const noexcept;
  };

 private:
  /// Per-pair evidence accumulated in pass 1: the interval's positive and
  /// negative rating counts t+/t- (the detector's frequency inputs, kept
  /// as doubles because thresholds are fractional multiples of the system
  /// average F), plus the indices of this pair's ratings in the
  /// interval's stream. The index list is what makes the parallel
  /// detect-and-adjust pass race-free: a rating index appears in exactly
  /// one pair's list, so rescaling writes to adjusted_ are disjoint.
  struct PairTally {
    double positive = 0.0;
    double negative = 0.0;
    std::vector<std::size_t> rating_indices;  // into the interval's stream
  };
  /// One active pair of the interval: its directed (rater, ratee) key and
  /// the tally above. update() flattens the PairMap into a
  /// std::vector<PairWork> sorted by (rater, ratee) — the canonical order
  /// every pass iterates in, the order blocks partition, and the order
  /// report_.flagged keeps. All three parallel passes index this vector
  /// by position, so "pair i" means the same pair on every thread count.
  struct PairWork {
    reputation::PairKey key;
    PairTally tally;
  };
  using PairMap = std::unordered_map<reputation::PairKey, PairTally,
                                     reputation::PairKeyHash>;

  /// Per-block partial of the detect-and-adjust pass — the private
  /// accumulator of one kPairBlock-sized block. Each worker writes only
  /// its own block's partial (no sharing, no atomics); after the join the
  /// partials are reduced into report_ serially in block-index order, so
  /// the integer counters, the order-sensitive floating-point weight_sum,
  /// and the concatenated flagged list never depend on thread scheduling.
  struct BlockPartial {
    std::size_t pairs_flagged = 0;
    std::size_t ratings_adjusted = 0;
    std::size_t b1 = 0, b2 = 0, b3 = 0, b4 = 0;  ///< per-behaviour counts
    double weight_sum = 0.0;           ///< sum of applied Gaussian weights
    std::vector<FlaggedPair> flagged;  ///< detector hits, pair-key order
  };

  double closeness_cached(reputation::NodeId i, reputation::NodeId j) const;
  double similarity_of(reputation::NodeId i, reputation::NodeId j) const;
  LooAggregate aggregate_over(reputation::NodeId rater,
                              const std::vector<reputation::NodeId>& ratees,
                              bool closeness) const;

  /// Runs fn(begin, end) over kPairBlock-sized blocks of [0, n): serially
  /// in block order when the plugin is single-threaded, across the pool
  /// otherwise. fn must only touch per-index or per-block state.
  void run_blocks(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn);

  /// The AggregationMode::kSharded path of update(): delegates passes 1-4
  /// to the lazily constructed ShardedAggregator (src/shard/) and feeds
  /// the adjusted stream to the wrapped system. Bit-identical to the
  /// centralized path under the synchronous exchange; epsilon-close under
  /// gossip (DESIGN.md §16).
  void update_sharded(std::span<const reputation::Rating> cycle_ratings);

  std::unique_ptr<reputation::ReputationSystem> inner_;
  const graph::SocialGraph& graph_;
  const InterestProfiles& profiles_;
  SocialTrustConfig config_;
  ClosenessModel closeness_model_;
  BehaviorDetector detector_;
  std::string name_;

  /// Workers for the update-interval passes; null when threads == 1 (the
  /// serial path shares the exact same blocked code, minus the pool).
  std::unique_ptr<util::ThreadPool> pool_;

  /// The sharded pipeline (AggregationMode::kSharded only), constructed
  /// on the first update so the partitioner cuts against the populated
  /// graph. When active, it owns the sharded equivalents of the slot /
  /// history / cache state below, which then stays empty.
  std::unique_ptr<shard::ShardedAggregator> sharded_;

  /// Cumulative per-rater rated sets (sorted); the population over which
  /// the per-rater Gaussian statistics are computed.
  std::vector<std::vector<reputation::NodeId>> rated_history_;

  /// Persistent closeness/similarity memo, revalidated per entry against
  /// graph/profile revisions — NOT per-update scratch; it survives across
  /// intervals (DESIGN.md §13). Mutable because closeness_cached() /
  /// similarity_of() are logically-const reads shared by the concurrent
  /// passes; the sharded cache makes them physically thread-safe.
  mutable SocialStateCache social_cache_;

  /// Carried per-pair coefficients of the dirty scheduler. slot_valid_
  /// is set iff the slot's pair was computed in some earlier interval
  /// and no dirty key (or history edit) has hit it since, so its values
  /// are exactly what closeness_cached/similarity_of would return today
  /// (the cache's revision-witness contract). Only the coordinator
  /// mutates validity (clear on dirty, set after the recompute pass);
  /// the parallel carry pass does read-only indexed loads.
  struct PairCoeff {
    double closeness = 0.0;
    double similarity = 0.0;
  };

  /// Dirty-mode slot plumbing. hist_slots_[r][k] is the stable slot id
  /// of pair (r, rated_history_[r][k]) — parallel to rated_history_, so
  /// a history insertion inserts a fresh id at the same position and no
  /// existing slot ever moves or remaps. Slots freed by forget_node leak
  /// (marked invalid, never reused); bounded by total distinct pairs
  /// ever rated, the same asymptote as rated_history_ itself.
  std::vector<std::vector<std::uint32_t>> hist_slots_;
  std::vector<PairCoeff> slot_coeff_;     ///< carried coefficients
  std::vector<std::uint8_t> slot_valid_;  ///< 1 = slot_coeff_ is current

  /// Per-slot interval scratch, stamp-gated by interval_seq_ so nothing
  /// is cleared between intervals: a slot's tally fields are meaningful
  /// iff slot_stamp_[slot] == interval_seq_ (i.e. the pair was rated in
  /// the current interval).
  std::vector<std::uint64_t> slot_stamp_;
  std::vector<double> slot_pos_, slot_neg_;      ///< interval t+/t- tallies
  std::vector<std::uint32_t> slot_ratings_;      ///< interval rating count
  std::vector<std::uint32_t> slot_active_idx_;   ///< slot -> active index
  std::uint64_t interval_seq_ = 0;

  /// Appends a fresh slot (invalid, unstamped) and returns its id.
  std::uint32_t new_slot();
  /// The slot of pair (rater, ratee), or kNoSlot when the ratee is not in
  /// the rater's history.
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFU;
  std::uint32_t slot_of(reputation::NodeId rater,
                        reputation::NodeId ratee) const noexcept;

  /// Carried per-rater leave-one-out aggregates (indexed by rater id).
  /// valid means: rebuilt over the rater's current rated_history_ with
  /// coefficients no dirty key has touched since — so a rebuild would
  /// replay the identical add() sequence and produce the identical
  /// struct. Invalidated by history growth (pass 1), history shrink
  /// (forget_node) and dirty closeness/similarity keys naming the rater.
  struct RaterAggregates {
    LooAggregate closeness;
    LooAggregate similarity;
    bool valid = false;
  };
  std::vector<RaterAggregates> rater_agg_;

  // Per-update scratch (rebuilt each call).
  std::vector<reputation::Rating> adjusted_;
  AdjustmentReport report_;
  DirtyStats dirty_stats_;

  /// Cache totals already reported in earlier intervals; the delta against
  /// the cache's cumulative stats gives this interval's hit rate.
  std::uint64_t cache_hits_reported_ = 0;
  std::uint64_t cache_misses_reported_ = 0;

  /// Observability handles, resolved once at construction (process-wide
  /// metrics; no-ops while the obs layer is disabled). Stage histograms
  /// record microseconds; counters accumulate across intervals.
  struct ObsHandles {
    obs::Histogram* total_us = nullptr;    ///< socialtrust.update.total_us
    obs::Histogram* collect_us = nullptr;  ///< socialtrust.update.collect_us
    obs::Histogram* loo_us = nullptr;      ///< socialtrust.update.loo_us
    obs::Histogram* adjust_us = nullptr;   ///< socialtrust.update.adjust_us
    obs::Counter* intervals = nullptr;     ///< socialtrust.intervals
    obs::Counter* ratings_seen = nullptr;  ///< socialtrust.ratings_seen
    obs::Counter* pairs_total = nullptr;   ///< socialtrust.pairs_total
    obs::Counter* pairs_flagged = nullptr;  ///< socialtrust.pairs_flagged
    obs::Counter* ratings_adjusted = nullptr;  ///< socialtrust.ratings_adjusted
    obs::Counter* pairs_dirty = nullptr;    ///< socialtrust.pairs_dirty
    obs::Counter* pairs_carried = nullptr;  ///< socialtrust.pairs_carried
    obs::Histogram* dirty_scan_us = nullptr;  ///< socialtrust.dirty_scan_us
    obs::Gauge* cache_hit_rate = nullptr;  ///< social_cache.hit_rate_pct
  };
  ObsHandles obs_;
};

}  // namespace st::core
