#include "core/closeness.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <vector>

namespace st::core {

ClosenessModel::ClosenessModel(bool weighted, double lambda,
                               RelationshipWeightFn weight_fn)
    : weighted_(weighted),
      lambda_(lambda),
      weight_fn_(weight_fn ? std::move(weight_fn)
                           : RelationshipWeightFn(
                                 graph::default_relationship_weight)) {
  // Tabulate the mass of every possible relationship-type set up front
  // (the weight_fn is evaluated here, once per type per mask, instead of
  // lazily per edge — it must be a pure weight mapping, per the class
  // contract). relationship_mass then reduces to one table read.
  for (std::size_t mask = 0; mask < (1U << graph::kRelationshipCount);
       ++mask) {
    mass_table_[mask] = mass_of_mask(static_cast<std::uint8_t>(mask));
  }
}

double ClosenessModel::mass_of_mask(std::uint8_t mask) const {
  if (!weighted_) {
    return static_cast<double>(std::popcount(mask));
  }
  // Eq. (10): sort relationship weights descending, decay the l-th by
  // lambda^(l-1), sum. Adding many weak relationships therefore changes
  // the mass only marginally.
  std::vector<double> weights;
  for (std::size_t i = 0; i < graph::kRelationshipCount; ++i) {
    if (mask & (1U << i)) {
      weights.push_back(weight_fn_(static_cast<graph::Relationship>(i)));
    }
  }
  std::sort(weights.begin(), weights.end(), std::greater<>());
  double mass = 0.0;
  double decay = 1.0;
  for (double w : weights) {
    mass += decay * w;
    decay *= lambda_;
  }
  return mass;
}

double ClosenessModel::relationship_mass(const graph::SocialGraph& g,
                                         graph::NodeId i,
                                         graph::NodeId j) const {
  return mass_table_[g.relationship_mask(i, j)];
}

double ClosenessModel::adjacent_closeness(const graph::SocialGraph& g,
                                          graph::NodeId i,
                                          graph::NodeId j) const {
  // One probe of i's sorted CSR row answers both "adjacent?" (mask != 0)
  // and "which types?" — the pre-CSR version paid a separate adjacency
  // search before fetching the mask.
  const std::uint8_t mask = g.relationship_mask(i, j);
  if (mask == 0) return 0.0;
  const double total = g.total_interactions(i);
  if (total <= 0.0) return 0.0;
  return mass_table_[mask] * g.interaction(i, j) / total;
}

double ClosenessModel::fof_closeness(
    const graph::SocialGraph& g, graph::NodeId i, graph::NodeId j,
    std::span<const graph::NodeId> common) const {
  // Eq. (3): friend-of-friend average over common friends, summed in the
  // ascending order common_friends() returns — the accumulation order is
  // part of the bit-identity contract.
  double sum = 0.0;
  for (graph::NodeId k : common) {
    sum += (adjacent_closeness(g, i, k) + adjacent_closeness(g, k, j)) / 2.0;
  }
  return sum;
}

double ClosenessModel::bottleneck_closeness(
    const graph::SocialGraph& g, std::span<const graph::NodeId> path) const {
  // Eq. (4): bottleneck (minimum) adjacent closeness along one shortest
  // social path.
  if (path.size() < 2) return 0.0;
  double bottleneck = std::numeric_limits<double>::infinity();
  for (std::size_t step = 0; step + 1 < path.size(); ++step) {
    bottleneck =
        std::min(bottleneck, adjacent_closeness(g, path[step], path[step + 1]));
  }
  return std::isfinite(bottleneck) ? bottleneck : 0.0;
}

double ClosenessModel::closeness(const graph::SocialGraph& g,
                                 graph::NodeId i, graph::NodeId j,
                                 std::size_t max_hops) const {
  if (i == j) return 0.0;  // self-closeness is meaningless for rating pairs
  // Adjacent fast path inlined so the pair costs one CSR row probe for
  // adjacency + mask together (plus the interaction lookup), instead of
  // a separate adjacent() search before adjacent_closeness() re-probes.
  const std::uint8_t mask = g.relationship_mask(i, j);
  if (mask != 0) {
    const double total = g.total_interactions(i);
    if (total <= 0.0) return 0.0;
    return mass_table_[mask] * g.interaction(i, j) / total;
  }

  std::vector<graph::NodeId> common = g.common_friends(i, j);
  if (!common.empty()) return fof_closeness(g, i, j, common);

  auto path = g.shortest_path(i, j, max_hops);
  if (!path) return 0.0;
  return bottleneck_closeness(g, *path);
}

}  // namespace st::core
