#pragma once
// Plain-text table rendering for bench/experiment output.
//
// Every bench binary prints the rows the corresponding paper table/figure
// reports; Table keeps that output aligned and diff-friendly, and can also
// serialise itself as CSV for downstream plotting.

#include <iosfwd>
#include <string>
#include <vector>

namespace st::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row_values(const std::vector<double>& values, int precision = 4);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return headers_.size(); }
  const std::string& cell(std::size_t row, std::size_t col) const {
    return rows_.at(row).at(col);
  }

  /// Renders an aligned ASCII table.
  std::string to_string() const;

  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for bench rows).
std::string fmt(double value, int precision = 4);

/// Formats "mean ± ci" the way the paper's error bars read.
std::string fmt_ci(double mean, double ci, int precision = 4);

}  // namespace st::util
