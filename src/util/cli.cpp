#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace st::util {

CliArgs::CliArgs(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string name = arg.substr(2);
      std::string value;
      auto eq = name.find('=');
      if (eq != std::string::npos) {
        value = name.substr(eq + 1);
        name = name.substr(0, eq);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      }
      flags_[name] = value;
    } else {
      positional_.push_back(arg);
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::optional<std::string> CliArgs::get(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_or(const std::string& name, std::string def) const {
  auto v = get(name);
  return v && !v->empty() ? *v : std::move(def);
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t def) const {
  auto v = get(name);
  if (!v || v->empty()) return def;
  return std::strtoll(v->c_str(), nullptr, 10);
}

std::uint64_t CliArgs::get_u64(const std::string& name,
                               std::uint64_t def) const {
  auto v = get(name);
  if (!v || v->empty()) return def;
  return std::strtoull(v->c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double def) const {
  auto v = get(name);
  if (!v || v->empty()) return def;
  return std::strtod(v->c_str(), nullptr);
}

}  // namespace st::util
