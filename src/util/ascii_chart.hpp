#pragma once
// Terminal chart rendering so every bench binary can show the *shape* of
// the paper's figures (reputation-distribution bar charts, CDF curves)
// directly in its stdout, next to the numeric rows.

#include <string>
#include <vector>

namespace st::util {

struct SeriesPoint {
  double x;
  double y;
};

/// Renders a horizontal bar chart: one bar per (label, value).
/// Values are scaled to `width` characters; negative values render leftward
/// markers. Suitable for the per-node reputation distributions of Figs 7-18.
std::string bar_chart(const std::vector<std::pair<std::string, double>>& bars,
                      std::size_t width = 60);

/// Renders an x/y scatter/line as a fixed-size character grid; used for the
/// CDF and trend figures (Figs 1-4, 19-20).
std::string line_chart(const std::vector<SeriesPoint>& points,
                       std::size_t width = 70, std::size_t height = 16);

/// Down-samples a long per-node vector into `buckets` group means with
/// labels "[lo-hi]" — the reputation-distribution figures plot 200 node IDs,
/// which is too many bars for a terminal.
std::vector<std::pair<std::string, double>> bucketize(
    const std::vector<double>& values, std::size_t buckets);

}  // namespace st::util
