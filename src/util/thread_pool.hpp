#pragma once
// Fixed-size RAII thread pool for fanning out independent simulation runs
// and the intra-interval passes of the SocialTrust plugin.
//
// The experiment harness repeats every configuration 5 times with distinct
// RNG streams (paper Section 5.1); runs share no mutable state, so they map
// onto a plain task pool. The pool follows the C++ Core Guidelines
// concurrency rules: joins in the destructor (CP.23-style), tasks own their
// data, results come back through futures.
//
// Two parallel_for shapes are provided:
//   * parallel_for(n, fn)        — one task per index; right for coarse
//     work items (whole simulation runs).
//   * parallel_for(n, grain, fn) — one task per contiguous block of up to
//     `grain` indices, fn(begin, end); right for fine-grained loops (the
//     per-pair passes of a reputation-update interval) where a future per
//     index would cost more than the work itself. Block boundaries depend
//     only on (n, grain) — never on the worker count — so callers can build
//     deterministic reductions on top of the block structure.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/obs.hpp"
#include "util/thread_annotations.hpp"

namespace st::util {

class ThreadPool {
 public:
  /// Starts `threads` workers (defaults to hardware concurrency, minimum 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Drains outstanding tasks and joins all workers; afterwards submit()
  /// and parallel_for() throw. Idempotent; also called by the destructor.
  void shutdown();

  /// Enqueues a callable; returns a future for its result. Throws
  /// std::runtime_error after shutdown().
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      MutexLock lock(mutex_);
      if (stopping_)
        throw std::runtime_error("ThreadPool: submit after shutdown");
      tasks_.emplace([task] { (*task)(); });
    }
    queue_depth_->add(1);
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Every task finishes before this returns, even on error; the first
  /// exception (lowest index) is then rethrown.
  template <typename F>
  void parallel_for(std::size_t n, F&& fn) {
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      futures.push_back(submit([&fn, i] { fn(i); }));
    }
    join_all(futures);
  }

  /// Blocked variant: runs fn(begin, end) over contiguous index blocks of
  /// up to `grain` indices covering [0, n). A single-block range executes
  /// inline on the calling thread, so tiny loops pay no future overhead.
  /// Same completion/exception contract as the per-index overload.
  template <typename F>
  void parallel_for(std::size_t n, std::size_t grain, F&& fn) {
    static_assert(std::is_invocable_v<F&, std::size_t, std::size_t>,
                  "blocked parallel_for needs fn(begin, end)");
    if (n == 0) return;
    if (grain == 0) grain = 1;
    if (n <= grain) {
      fn(0, n);
      return;
    }
    std::vector<std::future<void>> futures;
    futures.reserve((n + grain - 1) / grain);
    for (std::size_t begin = 0; begin < n; begin += grain) {
      std::size_t end = std::min(begin + grain, n);
      futures.push_back(submit([&fn, begin, end] { fn(begin, end); }));
    }
    join_all(futures);
  }

 private:
  void worker_loop();

  /// Waits for every future, then rethrows the first stored exception.
  /// Waiting on all of them before propagating keeps the caller's closure
  /// alive until no queued task can still reference it.
  static void join_all(std::vector<std::future<void>>& futures) {
    std::exception_ptr first;
    for (auto& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
  }

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<std::function<void()>> tasks_ ST_GUARDED_BY(mutex_);
  // condition_variable_any: the plain std::condition_variable only waits
  // on std::unique_lock<std::mutex>, and mutex_ is the annotated wrapper.
  std::condition_variable_any cv_;
  bool stopping_ ST_GUARDED_BY(mutex_) = false;

  // Observability handles (process-wide metrics, shared by every pool in
  // the process; resolved once in the constructor, no-ops while the obs
  // layer is disabled). See docs/OBSERVABILITY.md.
  obs::Gauge* queue_depth_ = nullptr;     ///< thread_pool.queue_depth
  obs::Counter* tasks_executed_ = nullptr;  ///< thread_pool.tasks_executed
  obs::Histogram* task_us_ = nullptr;     ///< thread_pool.task_us
};

}  // namespace st::util
