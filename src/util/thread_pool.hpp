#pragma once
// Fixed-size RAII thread pool for fanning out independent simulation runs.
//
// The experiment harness repeats every configuration 5 times with distinct
// RNG streams (paper Section 5.1); runs share no mutable state, so they map
// onto a plain task pool. The pool follows the C++ Core Guidelines
// concurrency rules: joins in the destructor (CP.23-style), tasks own their
// data, results come back through futures.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace st::util {

class ThreadPool {
 public:
  /// Starts `threads` workers (defaults to hardware concurrency, minimum 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_)
        throw std::runtime_error("ThreadPool: submit after shutdown");
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Exceptions from tasks propagate out of this call (first one wins).
  template <typename F>
  void parallel_for(std::size_t n, F&& fn) {
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      futures.push_back(submit([&fn, i] { fn(i); }));
    }
    for (auto& f : futures) f.get();
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace st::util
