#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace st::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty())
    throw std::invalid_argument("Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: row arity mismatch");
  rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c];
      out << std::string(width[c] - row[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c)
      out << "+" << std::string(width[c] + 2, '-');
    out << "+\n";
  };

  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string quoted = "\"";
    for (char ch : s) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << escape(row[c]);
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string fmt_ci(double mean, double ci, int precision) {
  return fmt(mean, precision) + " ± " + fmt(ci, precision);
}

}  // namespace st::util
