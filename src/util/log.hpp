#pragma once
// Tiny leveled logger. Experiments are long-running; INFO progress lines
// keep bench output interpretable without a dependency on an external
// logging library. Thread-safe: one mutex around the stream write.

#include <sstream>
#include <string>

namespace st::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level (default: kInfo).
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one line to stderr if `level` >= the global level.
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream out;
  (out << ... << std::forward<Args>(args));
  return out.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_line(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  log_line(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace st::util
