#pragma once
// Clang -Wthread-safety capability annotations plus the annotated mutex
// types the project locks with.
//
// The macros expand to clang's thread-safety attributes under clang and
// to nothing elsewhere, so annotated code compiles identically under gcc
// while the clang CI leg statically checks the locking discipline
// (DESIGN.md §13: RAII-only, one shard at a time, compute outside /
// publish under the lock).
//
// st::util::Mutex wraps std::mutex with the CAPABILITY attribute —
// std::mutex itself carries no annotations, so GUARDED_BY on a plain
// std::mutex member checks nothing. MutexLock is the matching
// SCOPED_CAPABILITY RAII guard; st-lint treats it as a lock-guard type
// (LOCK-1/3/4 extents) just like std::lock_guard.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define ST_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ST_THREAD_ANNOTATION(x)  // no-op off clang
#endif

#define ST_CAPABILITY(x) ST_THREAD_ANNOTATION(capability(x))
#define ST_SCOPED_CAPABILITY ST_THREAD_ANNOTATION(scoped_lockable)
#define ST_GUARDED_BY(x) ST_THREAD_ANNOTATION(guarded_by(x))
#define ST_PT_GUARDED_BY(x) ST_THREAD_ANNOTATION(pt_guarded_by(x))
#define ST_REQUIRES(...) \
  ST_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ST_ACQUIRE(...) \
  ST_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ST_RELEASE(...) \
  ST_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ST_EXCLUDES(...) ST_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ST_RETURN_CAPABILITY(x) ST_THREAD_ANNOTATION(lock_returned(x))
#define ST_NO_THREAD_SAFETY_ANALYSIS \
  ST_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace st::util {

/// std::mutex with the `capability` attribute, so members can be
/// declared ST_GUARDED_BY(mutex_) and functions ST_REQUIRES(mutex_).
/// BasicLockable, so std::condition_variable_any and std::unique_lock
/// still work where a scoped guard is not enough (ThreadPool's wait
/// loop).
class ST_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // st-lint: LOCK-2 exempts this file — these are the primitives the
  // RAII guards are built from.
  void lock() ST_ACQUIRE() { m_.lock(); }
  void unlock() ST_RELEASE() { m_.unlock(); }

 private:
  std::mutex m_;
};

/// RAII guard over Mutex, annotated as a scoped capability so clang
/// tracks the held set through it. Deliberately minimal: no deferred or
/// adopted locking — the project's discipline is acquire-in-ctor,
/// release-in-dtor, nothing else.
class ST_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) ST_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() ST_RELEASE() { m_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

}  // namespace st::util
