#pragma once
// Minimal CSV writing used by bench binaries when `--csv <dir>` is given:
// each table/figure emits a machine-readable file alongside its stdout rows.

#include <filesystem>
#include <string>

namespace st::util {
class Table;

/// Writes `table` as CSV to `dir/name`. Creates the directory if needed.
/// Returns the full path written. Throws std::runtime_error on I/O failure.
std::filesystem::path write_csv(const Table& table,
                                const std::filesystem::path& dir,
                                const std::string& name);

}  // namespace st::util
