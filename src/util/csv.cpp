#include "util/csv.hpp"

#include <fstream>
#include <stdexcept>

#include "util/table.hpp"

namespace st::util {

std::filesystem::path write_csv(const Table& table,
                                const std::filesystem::path& dir,
                                const std::string& name) {
  std::filesystem::create_directories(dir);
  std::filesystem::path path = dir / name;
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_csv: cannot open " + path.string());
  }
  out << table.to_csv();
  if (!out) {
    throw std::runtime_error("write_csv: write failed for " + path.string());
  }
  return path;
}

}  // namespace st::util
