#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace st::util {

std::string bar_chart(const std::vector<std::pair<std::string, double>>& bars,
                      std::size_t width) {
  if (bars.empty()) return "(no data)\n";
  double max_abs = 0.0;
  std::size_t label_w = 0;
  for (const auto& [label, value] : bars) {
    max_abs = std::max(max_abs, std::fabs(value));
    label_w = std::max(label_w, label.size());
  }
  if (max_abs == 0.0) max_abs = 1.0;

  std::ostringstream out;
  for (const auto& [label, value] : bars) {
    auto len = static_cast<std::size_t>(
        std::lround(std::fabs(value) / max_abs * static_cast<double>(width)));
    out << label << std::string(label_w - label.size(), ' ') << " |";
    out << std::string(len, value >= 0.0 ? '#' : '<');
    out << "  " << value << "\n";
  }
  return out.str();
}

std::string line_chart(const std::vector<SeriesPoint>& points,
                       std::size_t width, std::size_t height) {
  if (points.empty()) return "(no data)\n";
  double xmin = points.front().x, xmax = points.front().x;
  double ymin = points.front().y, ymax = points.front().y;
  for (const auto& p : points) {
    xmin = std::min(xmin, p.x);
    xmax = std::max(xmax, p.x);
    ymin = std::min(ymin, p.y);
    ymax = std::max(ymax, p.y);
  }
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;

  std::vector<std::string> grid(height, std::string(width, ' '));
  for (const auto& p : points) {
    auto cx = static_cast<std::size_t>(
        std::lround((p.x - xmin) / (xmax - xmin) *
                    static_cast<double>(width - 1)));
    auto cy = static_cast<std::size_t>(
        std::lround((p.y - ymin) / (ymax - ymin) *
                    static_cast<double>(height - 1)));
    grid[height - 1 - cy][cx] = '*';
  }

  std::ostringstream out;
  out << "y: [" << ymin << ", " << ymax << "]\n";
  for (const auto& row : grid) out << "  |" << row << "\n";
  out << "  +" << std::string(width, '-') << "\n";
  out << "   x: [" << xmin << ", " << xmax << "]\n";
  return out.str();
}

std::vector<std::pair<std::string, double>> bucketize(
    const std::vector<double>& values, std::size_t buckets) {
  std::vector<std::pair<std::string, double>> out;
  if (values.empty() || buckets == 0) return out;
  buckets = std::min(buckets, values.size());
  const std::size_t n = values.size();
  for (std::size_t b = 0; b < buckets; ++b) {
    std::size_t lo = b * n / buckets;
    std::size_t hi = (b + 1) * n / buckets;  // exclusive
    double sum = 0.0;
    for (std::size_t i = lo; i < hi; ++i) sum += values[i];
    double mean = sum / static_cast<double>(hi - lo);
    std::ostringstream label;
    label << "[" << (lo + 1) << "-" << hi << "]";
    out.emplace_back(label.str(), mean);
  }
  return out;
}

}  // namespace st::util
