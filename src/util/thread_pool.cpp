#include "util/thread_pool.hpp"

#include <algorithm>

namespace st::util {

ThreadPool::ThreadPool(std::size_t threads) {
  auto& registry = obs::Obs::instance().registry();
  queue_depth_ = &registry.gauge("thread_pool.queue_depth");
  tasks_executed_ = &registry.counter("thread_pool.tasks_executed");
  task_us_ = &registry.histogram("thread_pool.task_us");
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

// NOLINTNEXTLINE(bugprone-exception-escape): shutdown() joins; a join that
// throws means the process state is already corrupt, so terminate is right.
ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    MutexLock lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

// NO_THREAD_SAFETY_ANALYSIS: the wait loop holds mutex_ through
// std::unique_lock<Mutex> (condition_variable_any needs a re-lockable
// guard, which the scoped MutexLock deliberately is not), and clang
// cannot see capability state through the unannotated std::unique_lock.
void ThreadPool::worker_loop() ST_NO_THREAD_SAFETY_ANALYSIS {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    queue_depth_->add(-1);
    {
      // packaged_task stores exceptions in the future, so task() cannot
      // throw past the timer.
      obs::ScopedTimer timer(*task_us_);
      task();
    }
    tasks_executed_->add(1);
  }
}

}  // namespace st::util
