#pragma once
// Shared command-line parsing for bench/example binaries.
//
// Every experiment binary accepts the same core switches:
//   --seed <u64>     base RNG seed (default 42)
//   --runs <n>       independent repetitions (default 5, as in the paper)
//   --csv <dir>      also write each table as CSV into <dir>
//   --quiet          suppress INFO logging
// plus binary-specific flags accessed via get_* helpers.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace st::util {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  /// True if `--name` appeared (with or without a value).
  bool has(const std::string& name) const;

  std::optional<std::string> get(const std::string& name) const;
  std::string get_or(const std::string& name, std::string def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  std::uint64_t get_u64(const std::string& name, std::uint64_t def) const;
  double get_double(const std::string& name, double def) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::unordered_map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace st::util
