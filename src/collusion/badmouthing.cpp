#include "collusion/badmouthing.hpp"

#include <algorithm>

namespace st::collusion {

using sim::InterestId;
using sim::NodeId;

void BadMouthingCollusion::setup(sim::Simulator& simulator,
                                 stats::Rng& rng) {
  // Victims: either the pretrusted nodes, or normal nodes that share a
  // declared interest with the attacker — the "business competitor"
  // framing of B4 (the attacker and victim sell similar products).
  const auto& cfg = simulator.config();
  for (NodeId attacker : simulator.colluders()) {
    simulator.set_collusion_role(attacker, sim::CollusionRole::kBoosting);
    std::vector<NodeId> candidates;
    if (options_.target_pretrusted) {
      candidates = simulator.pretrusted();
    } else {
      auto interests = simulator.profiles().declared(attacker);
      for (NodeId v = 0; v < cfg.node_count; ++v) {
        if (simulator.node_type(v) != sim::NodeType::kNormal) continue;
        auto theirs = simulator.profiles().declared(v);
        bool shares = false;
        for (InterestId c : interests) {
          if (std::binary_search(theirs.begin(), theirs.end(), c)) {
            shares = true;
            break;
          }
        }
        if (shares) candidates.push_back(v);
      }
    }
    if (candidates.empty()) continue;
    std::size_t victims =
        std::min(options_.victims_per_colluder, candidates.size());
    auto picks = rng.sample_without_replacement(candidates.size(), victims);
    for (std::size_t p : picks) {
      assignments_.emplace_back(attacker, candidates[p]);
      // The attacker also floods *requests* in the shared categories (it
      // competes in them), which is what makes B4's high-similarity
      // signature hold even if it later prunes its declared profile.
      auto interests = simulator.profiles().declared(attacker);
      if (!interests.empty()) {
        simulator.profiles().record_request(
            attacker, interests[rng.index(interests.size())], 5.0);
      }
    }
  }
}

void BadMouthingCollusion::on_query_cycle(sim::Simulator& simulator,
                                          std::uint32_t /*query_cycle*/,
                                          stats::Rng& rng) {
  for (const auto& [attacker, victim] : assignments_) {
    auto interests = simulator.profiles().declared(victim);
    for (std::size_t k = 0; k < options_.ratings_per_query_cycle; ++k) {
      InterestId interest =
          interests.empty() ? reputation::kNoInterest
                            : interests[rng.index(interests.size())];
      simulator.submit_rating(attacker, victim, -1.0, interest,
                              /*is_transaction=*/false);
    }
  }
}

}  // namespace st::collusion
