#include "collusion/whitewashing.hpp"

#include <algorithm>

namespace st::collusion {

using graph::Relationship;
using sim::InterestId;
using sim::NodeId;

void WhitewashingCollusion::wire_pair(sim::Simulator& simulator, NodeId a,
                                      NodeId b, stats::Rng& rng) {
  const auto& cfg = simulator.config();
  auto count = static_cast<std::size_t>(
      rng.uniform_u64(cfg.colluder_relationships_min,
                      cfg.colluder_relationships_max));
  auto rels =
      rng.sample_without_replacement(graph::kRelationshipCount, count);
  for (std::size_t r : rels) {
    simulator.social_graph().add_relationship(
        a, b, static_cast<Relationship>(r));
  }
}

void WhitewashingCollusion::setup(sim::Simulator& simulator,
                                  stats::Rng& rng) {
  std::vector<NodeId> pool = simulator.colluders();
  rng.shuffle(std::span<NodeId>(pool));
  for (std::size_t i = 0; i + 1 < pool.size(); i += 2) {
    pairs_.emplace_back(pool[i], pool[i + 1]);
    simulator.set_collusion_role(pool[i], sim::CollusionRole::kBoth);
    simulator.set_collusion_role(pool[i + 1], sim::CollusionRole::kBoth);
    wire_pair(simulator, pool[i], pool[i + 1], rng);
  }
  cooldown_.assign(simulator.config().node_count, 0);
}

void WhitewashingCollusion::on_query_cycle(sim::Simulator& simulator,
                                           std::uint32_t /*query_cycle*/,
                                           stats::Rng& rng) {
  auto& system = simulator.system();
  auto maybe_whitewash = [&](NodeId node, NodeId partner) {
    if (cooldown_[node] > 0) {
      --cooldown_[node];
      return false;  // still lying low
    }
    if (system.reputation(node) >= options_.whitewash_below) return false;
    if (simulator.whitewash_count(node) >= options_.max_whitewashes)
      return false;
    // Only reset once the identity has accumulated *negative* standing —
    // a zero-reputation node early in the run has nothing to shed yet.
    if (simulator.social_graph().total_interactions(node) == 0.0)
      return false;
    simulator.whitewash(node);
    wire_pair(simulator, node, partner, rng);
    cooldown_[node] = options_.cooldown_query_cycles;
    ++total_whitewashes_;
    return true;
  };

  for (const auto& [a, b] : pairs_) {
    maybe_whitewash(a, b);
    maybe_whitewash(b, a);
    if (cooldown_[a] > 0 || cooldown_[b] > 0) continue;
    auto rate = [&](NodeId rater, NodeId ratee) {
      auto interests = simulator.profiles().declared(ratee);
      for (std::size_t k = 0; k < options_.ratings_per_query_cycle; ++k) {
        InterestId interest =
            interests.empty()
                ? reputation::kNoInterest
                : interests[rng.index(interests.size())];
        simulator.submit_rating(rater, ratee, 1.0, interest,
                                /*is_transaction=*/false);
      }
    };
    rate(a, b);
    rate(b, a);
  }
}

}  // namespace st::collusion
