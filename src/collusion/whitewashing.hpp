#pragma once
// Whitewashing collusion — an extension attack beyond the paper.
//
// Reputation systems with cheap identities are vulnerable to peers that
// discard a bad identity and rejoin fresh (Friedman & Resnick's classic
// "social cost of cheap pseudonyms"). Combined with collusion it probes a
// specific question the paper leaves open: once SocialTrust has crushed a
// colluder's reputation, can the colluder simply reset and resume?
//
// The strategy runs pair-wise collusion; whenever a colluder's reputation
// has been pushed below `whitewash_below`, it whitewashes (the simulator
// erases its reputation evidence, social edges, interaction and request
// history), re-wires its conspirator edge, and resumes rating. A per-node
// whitewash budget caps the churn.

#include <cstddef>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/strategy.hpp"

namespace st::collusion {

struct WhitewashingOptions {
  /// Fake positive ratings per partner per query cycle.
  std::size_t ratings_per_query_cycle = 20;
  /// Reputation threshold that triggers an identity reset.
  double whitewash_below = 1e-4;
  /// Maximum identity resets per colluder over the whole run.
  std::uint32_t max_whitewashes = 5;
  /// Query cycles to lie low after a reset before resuming the attack
  /// (immediately resuming re-triggers detection on the same interval).
  std::uint32_t cooldown_query_cycles = 10;
};

class WhitewashingCollusion final : public sim::CollusionStrategy {
 public:
  explicit WhitewashingCollusion(WhitewashingOptions options = {}) noexcept
      : options_(options) {}

  std::string_view name() const noexcept override { return "Whitewashing"; }
  void setup(sim::Simulator& simulator, stats::Rng& rng) override;
  void on_query_cycle(sim::Simulator& simulator, std::uint32_t query_cycle,
                      stats::Rng& rng) override;

  const WhitewashingOptions& options() const noexcept { return options_; }
  std::uint64_t total_whitewashes() const noexcept {
    return total_whitewashes_;
  }

 private:
  void wire_pair(sim::Simulator& simulator, sim::NodeId a, sim::NodeId b,
                 stats::Rng& rng);

  WhitewashingOptions options_;
  std::vector<std::pair<sim::NodeId, sim::NodeId>> pairs_;
  std::vector<std::uint32_t> cooldown_;  // per colluder index
  std::uint64_t total_whitewashes_ = 0;
};

}  // namespace st::collusion
