#include "collusion/models.hpp"

#include <algorithm>

namespace st::collusion {

using graph::Relationship;
using sim::CollusionRole;
using sim::InterestId;

void CollusionModelBase::setup(sim::Simulator& simulator, stats::Rng& rng) {
  pick_partners(simulator, rng);
  wire_conspirators(simulator, rng);
  if (options_.falsify_social_info) falsify_profiles(simulator, rng);
  if (options_.compromised_pretrusted > 0)
    setup_compromised(simulator, rng);
}

void CollusionModelBase::wire_conspirators(sim::Simulator& simulator,
                                           stats::Rng& rng) {
  // Colluder-colluder social distance is 1 (Section 5.1); their edges
  // carry [3,5] relationship types unless the falsification counterattack
  // trims them to exactly one.
  auto& g = simulator.social_graph();
  const auto& cfg = simulator.config();
  auto wire_edge = [&](NodeId a, NodeId b) {
    std::size_t rel_count =
        options_.falsify_social_info
            ? 1
            : static_cast<std::size_t>(
                  rng.uniform_u64(cfg.colluder_relationships_min,
                                  cfg.colluder_relationships_max));
    // Falsifying colluders shed extra relationships first.
    if (options_.falsify_social_info) {
      for (std::size_t r = 0; r < graph::kRelationshipCount; ++r) {
        g.remove_relationship(a, b, static_cast<Relationship>(r));
      }
    }
    auto rels =
        rng.sample_without_replacement(graph::kRelationshipCount, rel_count);
    for (std::size_t r : rels) {
      g.add_relationship(a, b, static_cast<Relationship>(r));
    }
  };
  for (const auto& [a, b] : links_) {
    if (options_.conspirator_distance <= 1) {
      wire_edge(a, b);
      continue;
    }
    // Fig. 20 sweep: route the tie through (distance - 1) random normal
    // relays instead of a direct edge, bounding the pair's social distance
    // from above by `conspirator_distance`.
    g.remove_relationship(a, b, Relationship::kFriendship);
    NodeId previous = a;
    for (std::size_t hop = 1; hop < options_.conspirator_distance; ++hop) {
      NodeId relay;
      do {
        relay = static_cast<NodeId>(rng.index(simulator.config().node_count));
      } while (relay == a || relay == b ||
               simulator.node_type(relay) != sim::NodeType::kNormal);
      wire_edge(previous, relay);
      previous = relay;
    }
    wire_edge(previous, b);
  }
}

void CollusionModelBase::falsify_profiles(sim::Simulator& simulator,
                                          stats::Rng& rng) {
  // "each pair of colluders has ... identical interests. The number of
  // identical interests is randomly chosen from [1-10]." (Section 5.8).
  // All members of a conspirator link adopt the same declared set; the
  // request-weighted similarity of Eq. (11) sees through this because the
  // colluders' *actual* requests still follow their original interests.
  const auto& cfg = simulator.config();
  auto size = static_cast<std::size_t>(
      rng.uniform_u64(1, std::min<std::uint64_t>(10, cfg.interest_count)));
  auto picks = rng.sample_without_replacement(cfg.interest_count, size);
  std::vector<InterestId> shared;
  shared.reserve(picks.size());
  for (std::size_t p : picks) shared.push_back(static_cast<InterestId>(p));
  for (NodeId c : simulator.colluders()) {
    simulator.profiles().set_interests(c, shared);
  }
}

void CollusionModelBase::setup_compromised(sim::Simulator& simulator,
                                           stats::Rng& rng) {
  // "We randomly selected 7 nodes from the pretrusted nodes and let them
  // randomly select a colluder with which to collude. We set the social
  // distance between a compromised pretrusted node and its conspired
  // colluder to 1." (Section 5.4).
  const auto& pretrusted = simulator.pretrusted();
  const auto& colluders = simulator.colluders();
  if (pretrusted.empty() || colluders.empty()) return;
  std::size_t count =
      std::min(options_.compromised_pretrusted, pretrusted.size());
  auto picks = rng.sample_without_replacement(pretrusted.size(), count);
  auto& g = simulator.social_graph();
  for (std::size_t p : picks) {
    NodeId pre = pretrusted[p];
    NodeId target = colluders[rng.index(colluders.size())];
    simulator.set_compromised(pre);
    compromised_.push_back(pre);
    compromised_links_.emplace_back(pre, target);
    g.add_relationship(pre, target, Relationship::kFriendship);
  }
}

void CollusionModelBase::rate_many(sim::Simulator& simulator, NodeId rater,
                                   NodeId ratee, std::size_t count,
                                   stats::Rng& rng) {
  auto interests = simulator.profiles().declared(ratee);
  for (std::size_t i = 0; i < count; ++i) {
    InterestId interest =
        interests.empty()
            ? reputation::kNoInterest
            : interests[rng.index(interests.size())];
    simulator.submit_rating(rater, ratee, options_.rating_value, interest,
                            /*is_transaction=*/false);
  }
}

void CollusionModelBase::on_query_cycle(sim::Simulator& simulator,
                                        std::uint32_t /*query_cycle*/,
                                        stats::Rng& rng) {
  emit(simulator, rng);
  // Compromised pretrusted nodes push their conspired colluder every query
  // cycle at the boosting rate; the colluder rates back (mutual pair).
  for (const auto& [pre, target] : compromised_links_) {
    rate_many(simulator, pre, target, options_.ratings_per_query_cycle, rng);
    rate_many(simulator, target, pre, options_.ratings_per_query_cycle, rng);
  }
}

// --- PCM -----------------------------------------------------------------

void PairwiseCollusion::pick_partners(sim::Simulator& simulator,
                                      stats::Rng& rng) {
  std::vector<NodeId> pool = simulator.colluders();
  rng.shuffle(std::span<NodeId>(pool));
  pairs_.clear();
  for (std::size_t i = 0; i + 1 < pool.size(); i += 2) {
    pairs_.emplace_back(pool[i], pool[i + 1]);
    links_.emplace_back(pool[i], pool[i + 1]);
    simulator.set_collusion_role(pool[i], CollusionRole::kBoth);
    simulator.set_collusion_role(pool[i + 1], CollusionRole::kBoth);
    boosting_.push_back(pool[i]);
    boosting_.push_back(pool[i + 1]);
    boosted_.push_back(pool[i]);
    boosted_.push_back(pool[i + 1]);
  }
}

void PairwiseCollusion::emit(sim::Simulator& simulator, stats::Rng& rng) {
  for (const auto& [a, b] : pairs_) {
    rate_many(simulator, a, b, options_.ratings_per_query_cycle, rng);
    rate_many(simulator, b, a, options_.ratings_per_query_cycle, rng);
  }
}

// --- MCM -----------------------------------------------------------------

void MultiNodeCollusion::pick_partners(sim::Simulator& simulator,
                                       stats::Rng& rng) {
  const auto& colluders = simulator.colluders();
  if (colluders.empty()) return;
  std::size_t boosted_count =
      std::min(options_.boosted_count, colluders.size());
  auto picks =
      rng.sample_without_replacement(colluders.size(), boosted_count);
  std::vector<bool> is_boosted(colluders.size(), false);
  for (std::size_t p : picks) {
    is_boosted[p] = true;
    boosted_.push_back(colluders[p]);
    simulator.set_collusion_role(colluders[p], CollusionRole::kBoosted);
  }
  assignments_.clear();
  for (std::size_t i = 0; i < colluders.size(); ++i) {
    if (is_boosted[i]) continue;
    NodeId booster = colluders[i];
    NodeId target = boosted_[rng.index(boosted_.size())];
    boosting_.push_back(booster);
    simulator.set_collusion_role(booster, CollusionRole::kBoosting);
    assignments_.emplace_back(booster, target);
    links_.emplace_back(booster, target);
  }
}

void MultiNodeCollusion::emit(sim::Simulator& simulator, stats::Rng& rng) {
  for (const auto& [booster, target] : assignments_) {
    rate_many(simulator, booster, target, options_.ratings_per_query_cycle,
              rng);
  }
}

// --- MMM -----------------------------------------------------------------

void MutualMultiNodeCollusion::pick_partners(sim::Simulator& simulator,
                                             stats::Rng& rng) {
  const auto& colluders = simulator.colluders();
  if (colluders.empty()) return;
  std::size_t boosted_count =
      std::min(options_.boosted_count, colluders.size());
  auto picks =
      rng.sample_without_replacement(colluders.size(), boosted_count);
  std::vector<bool> is_boosted(colluders.size(), false);
  for (std::size_t p : picks) {
    is_boosted[p] = true;
    boosted_.push_back(colluders[p]);
    simulator.set_collusion_role(colluders[p], CollusionRole::kBoosted);
  }
  for (std::size_t i = 0; i < colluders.size(); ++i) {
    if (is_boosted[i]) continue;
    boosting_.push_back(colluders[i]);
    simulator.set_collusion_role(colluders[i], CollusionRole::kBoosting);
    // Mutual raters are socially wired to every boosted node they might
    // pick; the paper fixes all colluder-colluder distances to 1.
    for (NodeId b : boosted_) links_.emplace_back(colluders[i], b);
  }
}

void MutualMultiNodeCollusion::emit(sim::Simulator& simulator,
                                    stats::Rng& rng) {
  // "each boosting node rates randomly chosen boosted nodes 20 times and
  // the boosted node rates its boosting nodes 5 times" (Section 5.6).
  std::vector<std::pair<NodeId, NodeId>> hits;
  hits.reserve(boosting_.size());
  for (NodeId booster : boosting_) {
    if (boosted_.empty()) break;
    NodeId target = boosted_[rng.index(boosted_.size())];
    rate_many(simulator, booster, target, options_.ratings_per_query_cycle,
              rng);
    hits.emplace_back(target, booster);
  }
  for (const auto& [boosted, booster] : hits) {
    rate_many(simulator, boosted, booster, options_.boosted_back_ratings,
              rng);
  }
}

}  // namespace st::collusion
