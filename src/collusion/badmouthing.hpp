#pragma once
// Negative-rating collusion ("bad-mouthing").
//
// Section 5.1: "We consider positive ratings among colluders in the
// experiments. Similar results can be obtained for the collusion of
// negative ratings." This strategy implements that flavour so the claim
// can actually be checked: a colluding group picks high-value victims
// (the pretrusted nodes and/or top normal sellers sharing their interests)
// and floods them with negative ratings at high frequency — the
// competitor-suppression scenario behind suspicious behaviour B4.

#include <cstddef>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/strategy.hpp"

namespace st::collusion {

struct BadMouthingOptions {
  /// Negative ratings each colluder emits per victim per query cycle.
  std::size_t ratings_per_query_cycle = 20;
  /// Victims per colluder.
  std::size_t victims_per_colluder = 2;
  /// Target the pretrusted nodes (true) or random normal competitors
  /// sharing the colluder's interests (false).
  bool target_pretrusted = false;
};

class BadMouthingCollusion final : public sim::CollusionStrategy {
 public:
  explicit BadMouthingCollusion(BadMouthingOptions options = {}) noexcept
      : options_(options) {}

  std::string_view name() const noexcept override { return "BadMouthing"; }
  void setup(sim::Simulator& simulator, stats::Rng& rng) override;
  void on_query_cycle(sim::Simulator& simulator, std::uint32_t query_cycle,
                      stats::Rng& rng) override;

  const BadMouthingOptions& options() const noexcept { return options_; }
  /// (attacker -> victim) assignments chosen at setup.
  const std::vector<std::pair<sim::NodeId, sim::NodeId>>& assignments()
      const noexcept {
    return assignments_;
  }

 private:
  BadMouthingOptions options_;
  std::vector<std::pair<sim::NodeId, sim::NodeId>> assignments_;
};

}  // namespace st::collusion
