#pragma once
// The three collusion models of the evaluation (Section 5.1, after
// Lian et al.'s Maze study [7]):
//
//   PCM — pair-wise collusion: two colluders mutually rate each other with
//         positive values at high frequency (20 ratings / query cycle).
//   MCM — multiple-node collusion: boosting nodes rate a boosted node at
//         high frequency; the boosted node does not rate back.
//   MMM — multiple & mutual collusion: boosting nodes rate boosted nodes
//         (20 / query cycle) and boosted nodes rate back (5 / query cycle).
//
// Orthogonal variants, applied through CollusionOptions:
//   * compromised pretrusted nodes join the collusion (Figs. 10, 15):
//     each compromised pretrusted node conspires with one colluder at
//     social distance 1;
//   * falsified social information (Section 5.8, Figs. 16-18): colluding
//     pairs carry exactly one social relationship and identical declared
//     interest profiles — the counterattack on SocialTrust's detector.

#include <cstddef>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/strategy.hpp"

namespace st::collusion {

using sim::NodeId;

struct CollusionOptions {
  /// Fake positive ratings a boosting node emits per query cycle
  /// ("colluders rate each other with high frequency of 20 ratings per
  /// query cycle").
  std::size_t ratings_per_query_cycle = 20;
  /// MMM: ratings a boosted node returns per boosting partner per query
  /// cycle.
  std::size_t boosted_back_ratings = 5;
  /// MCM/MMM: how many colluders act as boosted nodes (paper: 7).
  std::size_t boosted_count = 7;
  /// Number of pretrusted nodes compromised into the collusion (0 or 7 in
  /// the paper's experiments).
  std::size_t compromised_pretrusted = 0;
  /// Section 5.8 counterattack: one relationship per colluding pair and
  /// identical declared interests (set size drawn from [1, 10]).
  bool falsify_social_info = false;
  /// Value of each fake rating (+1 = positive collusion; -1 models the
  /// bad-mouthing flavour).
  double rating_value = 1.0;
  /// Social distance at which conspirators wire themselves (Fig. 20 sweep).
  /// 1 = direct edge (the paper's default); 2 or 3 route the tie through
  /// randomly chosen normal-node relays instead of a direct edge, so the
  /// pair's shortest social path has (at most) this many hops.
  std::size_t conspirator_distance = 1;
};

/// Shared plumbing: conspirator wiring, profile falsification, compromised
/// pretrusted bookkeeping. Concrete models implement pick_partners() and
/// emit().
class CollusionModelBase : public sim::CollusionStrategy {
 public:
  explicit CollusionModelBase(CollusionOptions options) noexcept
      : options_(options) {}

  void setup(sim::Simulator& simulator, stats::Rng& rng) final;
  void on_query_cycle(sim::Simulator& simulator, std::uint32_t query_cycle,
                      stats::Rng& rng) final;

  const CollusionOptions& options() const noexcept { return options_; }

  /// Directed conspirator links wired at setup (tests/diagnostics).
  const std::vector<std::pair<NodeId, NodeId>>& links() const noexcept {
    return links_;
  }
  const std::vector<NodeId>& boosted() const noexcept { return boosted_; }
  const std::vector<NodeId>& boosting() const noexcept { return boosting_; }
  const std::vector<NodeId>& compromised() const noexcept {
    return compromised_;
  }

 protected:
  /// Populates boosted_/boosting_/links_ from the simulator's colluder
  /// list. links_ holds (booster -> target) pairs used for edge wiring.
  virtual void pick_partners(sim::Simulator& simulator, stats::Rng& rng) = 0;

  /// Emits this model's fake ratings for one query cycle.
  virtual void emit(sim::Simulator& simulator, stats::Rng& rng) = 0;

  /// Emits `count` fake positive ratings rater -> ratee on a random
  /// interest of the ratee ("on an interest randomly selected from the
  /// interests of the boosted node").
  void rate_many(sim::Simulator& simulator, NodeId rater, NodeId ratee,
                 std::size_t count, stats::Rng& rng);

  CollusionOptions options_;
  std::vector<std::pair<NodeId, NodeId>> links_;
  std::vector<NodeId> boosted_;
  std::vector<NodeId> boosting_;
  std::vector<NodeId> compromised_;
  /// Compromised pretrusted node -> its conspired colluder.
  std::vector<std::pair<NodeId, NodeId>> compromised_links_;

 private:
  void wire_conspirators(sim::Simulator& simulator, stats::Rng& rng);
  void falsify_profiles(sim::Simulator& simulator, stats::Rng& rng);
  void setup_compromised(sim::Simulator& simulator, stats::Rng& rng);
};

/// PCM: colluders pair up; both partners are boosting and boosted.
class PairwiseCollusion final : public CollusionModelBase {
 public:
  explicit PairwiseCollusion(CollusionOptions options = {}) noexcept
      : CollusionModelBase(options) {}
  std::string_view name() const noexcept override { return "PCM"; }

 protected:
  void pick_partners(sim::Simulator& simulator, stats::Rng& rng) override;
  void emit(sim::Simulator& simulator, stats::Rng& rng) override;

 private:
  std::vector<std::pair<NodeId, NodeId>> pairs_;
};

/// MCM: boosting nodes each pick one boosted node; no back-rating.
class MultiNodeCollusion final : public CollusionModelBase {
 public:
  explicit MultiNodeCollusion(CollusionOptions options = {}) noexcept
      : CollusionModelBase(options) {}
  std::string_view name() const noexcept override { return "MCM"; }

 protected:
  void pick_partners(sim::Simulator& simulator, stats::Rng& rng) override;
  void emit(sim::Simulator& simulator, stats::Rng& rng) override;

 private:
  /// boosting node -> its fixed boosted target
  std::vector<std::pair<NodeId, NodeId>> assignments_;
};

/// MMM: boosting nodes rate a random boosted node each query cycle; the
/// boosted node rates those boosters back.
class MutualMultiNodeCollusion final : public CollusionModelBase {
 public:
  explicit MutualMultiNodeCollusion(CollusionOptions options = {}) noexcept
      : CollusionModelBase(options) {}
  std::string_view name() const noexcept override { return "MMM"; }

 protected:
  void pick_partners(sim::Simulator& simulator, stats::Rng& rng) override;
  void emit(sim::Simulator& simulator, stats::Rng& rng) override;
};

}  // namespace st::collusion
